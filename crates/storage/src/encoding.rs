//! Per-column physical encodings and the shared read abstraction the
//! fused kernels execute through.
//!
//! The paper's compression discussion (Section 5.5, elaborated by the
//! follow-up literature) observes that lightweight encodings — bit-packing
//! a column to `ceil(log2(domain))` bits, dictionary-coding strings —
//! change the fundamental bounds of a scan: the bytes a kernel must move
//! drop by the compression ratio while a few shift/mask instructions per
//! value are added. Whether that trade pays depends on the device's
//! compute-to-bandwidth ratio, which is exactly the axis the paper
//! studies.
//!
//! This module makes the encoding a first-class *execution* property
//! rather than a storage detail:
//!
//! * [`Encoding`] — the per-column descriptor the engines thread through
//!   their plans (plain 4-byte values, or bit-packed at a fixed width).
//! * [`EncodedColumn`] — a column materialized under one encoding.
//! * [`ColumnRead`] — the one trait every fused kernel reads through; it
//!   is implemented by plain slices, [`PackedView`]s and [`ColumnSlice`],
//!   so a kernel monomorphized over `ColumnRead` unpacks in registers and
//!   never materializes a decompressed column.
//! * [`ColumnSlice`] — a borrowed either-plain-or-packed column, the type
//!   executors resolve plan columns to before entering their hot loops.

use crate::bitpack::{PackedColumn, PackedView};

/// How a logical `i32` column is physically stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// One 4-byte little-endian value per row (the paper's baseline
    /// storage convention, Section 5.2).
    Plain,
    /// Fixed-width bit-packing at `bits` per value into a `u64` word
    /// stream (non-negative values only). `bits == 32` is a valid no-op
    /// pack: same information, 8-byte word granularity.
    BitPacked {
        /// Width per value, `1..=32`.
        bits: u32,
    },
}

impl Encoding {
    /// The tightest packing able to hold every value of `values`.
    pub fn packed_min(values: &[i32]) -> Self {
        Encoding::BitPacked {
            bits: PackedColumn::min_bits(values),
        }
    }

    /// Physical bytes a column of `rows` values occupies under this
    /// encoding (packed streams round up to whole 8-byte words).
    pub fn bytes_for(&self, rows: usize) -> usize {
        match self {
            Encoding::Plain => rows * 4,
            Encoding::BitPacked { bits } => (rows * *bits as usize).div_ceil(64) * 8,
        }
    }

    /// Compression ratio versus plain 4-byte storage (1.0 for
    /// [`Encoding::Plain`]; asymptotic, ignoring the final partial word).
    pub fn ratio(&self) -> f64 {
        match self {
            Encoding::Plain => 1.0,
            Encoding::BitPacked { bits } => 32.0 / *bits as f64,
        }
    }

    /// Whether this encoding packs (anything but [`Encoding::Plain`]).
    pub fn is_packed(&self) -> bool {
        !matches!(self, Encoding::Plain)
    }
}

/// Uniform read access to a column regardless of its physical encoding.
///
/// This is the seam the fused kernels share: `crystal_core::selvec`'s
/// selection/probe kernels, the CPU operators and the executors are all
/// generic over `ColumnRead`, so one implementation serves plain and
/// packed columns and the packed instantiation unpacks value-at-a-time in
/// registers (never a full-column decompress).
pub trait ColumnRead {
    /// The value at `row`.
    fn value(&self, row: usize) -> i32;

    /// Number of rows.
    fn row_count(&self) -> usize;

    /// Decodes `out.len()` consecutive values starting at `start` into
    /// `out` — the bulk entry point the chunked kernels stage a whole
    /// decode chunk through before their branch-free compare/compact
    /// phase. The default walks [`ColumnRead::value`]; implementations
    /// with a cheaper bulk form override it ([`PackedView`] decodes
    /// word-parallel: one load and one shift/mask cascade per packed
    /// `u64` instead of an address computation and reload per value).
    #[inline]
    fn read_batch(&self, start: usize, out: &mut [i32]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.value(start + k);
        }
    }

    /// The underlying plain slice when the column is already decoded
    /// 4-byte storage, letting chunked kernels borrow their decode window
    /// zero-copy instead of staging it through [`ColumnRead::read_batch`].
    /// `None` for packed storage (the decode is real work there).
    #[inline]
    fn plain(&self) -> Option<&[i32]> {
        None
    }

    /// Stages the window `start..end` for a chunked kernel: plain
    /// storage lends it zero-copy, anything else batch-decodes into
    /// `buf` (which must hold at least `end - start` values). This is
    /// the one decode-phase idiom every two-phase kernel shares.
    #[inline]
    fn stage<'a>(&'a self, start: usize, end: usize, buf: &'a mut [i32]) -> &'a [i32] {
        match self.plain() {
            Some(s) => &s[start..end],
            None => {
                let b = &mut buf[..end - start];
                self.read_batch(start, b);
                b
            }
        }
    }
}

impl ColumnRead for [i32] {
    #[inline]
    fn value(&self, row: usize) -> i32 {
        self[row]
    }

    #[inline]
    fn row_count(&self) -> usize {
        self.len()
    }

    #[inline]
    fn read_batch(&self, start: usize, out: &mut [i32]) {
        out.copy_from_slice(&self[start..start + out.len()]);
    }

    #[inline]
    fn plain(&self) -> Option<&[i32]> {
        Some(self)
    }
}

impl ColumnRead for PackedView<'_> {
    #[inline]
    fn value(&self, row: usize) -> i32 {
        self.get(row)
    }

    #[inline]
    fn row_count(&self) -> usize {
        self.len()
    }

    #[inline]
    fn read_batch(&self, start: usize, out: &mut [i32]) {
        self.get_batch(start, out);
    }
}

/// A borrowed column in either physical format.
///
/// Executors resolve each plan column to a `ColumnSlice` once, then
/// dispatch on the variant *per kernel call* (not per value), so the inner
/// loops stay monomorphic and branch-free.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// A plain 4-byte column.
    Plain(&'a [i32]),
    /// A bit-packed column view.
    Packed(PackedView<'a>),
}

impl ColumnSlice<'_> {
    /// The encoding this slice reads.
    pub fn encoding(&self) -> Encoding {
        match self {
            ColumnSlice::Plain(_) => Encoding::Plain,
            ColumnSlice::Packed(v) => Encoding::BitPacked { bits: v.bits() },
        }
    }
}

impl ColumnRead for ColumnSlice<'_> {
    #[inline]
    fn value(&self, row: usize) -> i32 {
        match self {
            ColumnSlice::Plain(s) => s[row],
            ColumnSlice::Packed(v) => v.get(row),
        }
    }

    #[inline]
    fn row_count(&self) -> usize {
        match self {
            ColumnSlice::Plain(s) => s.len(),
            ColumnSlice::Packed(v) => v.len(),
        }
    }

    #[inline]
    fn read_batch(&self, start: usize, out: &mut [i32]) {
        match self {
            ColumnSlice::Plain(s) => s.read_batch(start, out),
            ColumnSlice::Packed(v) => v.read_batch(start, out),
        }
    }

    #[inline]
    fn plain(&self) -> Option<&[i32]> {
        match self {
            ColumnSlice::Plain(s) => Some(s),
            ColumnSlice::Packed(_) => None,
        }
    }
}

/// A column materialized under one [`Encoding`].
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// Plain 4-byte storage.
    Plain(Vec<i32>),
    /// Bit-packed storage.
    Packed(PackedColumn),
}

impl EncodedColumn {
    /// Materializes `values` under `encoding`.
    ///
    /// # Panics
    /// Panics if a value does not fit the requested packed width (callers
    /// choose widths from the data via [`Encoding::packed_min`], so a
    /// misfit is a programming error).
    pub fn encode(values: &[i32], encoding: Encoding) -> Self {
        match encoding {
            Encoding::Plain => EncodedColumn::Plain(values.to_vec()),
            Encoding::BitPacked { bits } => EncodedColumn::Packed(
                PackedColumn::pack(values, bits).expect("value outside packed width"),
            ),
        }
    }

    /// The encoding this column is stored under.
    pub fn encoding(&self) -> Encoding {
        match self {
            EncodedColumn::Plain(_) => Encoding::Plain,
            EncodedColumn::Packed(p) => Encoding::BitPacked { bits: p.bits() },
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.len(),
            EncodedColumn::Packed(p) => p.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical bytes occupied.
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.len() * 4,
            EncodedColumn::Packed(p) => p.size_bytes(),
        }
    }

    /// A borrowed view for kernel execution.
    pub fn slice(&self) -> ColumnSlice<'_> {
        match self {
            EncodedColumn::Plain(v) => ColumnSlice::Plain(v),
            EncodedColumn::Packed(p) => ColumnSlice::Packed(p.view()),
        }
    }

    /// The packed representation, when this column is packed (device
    /// engines upload the raw word stream).
    pub fn as_packed(&self) -> Option<&PackedColumn> {
        match self {
            EncodedColumn::Packed(p) => Some(p),
            EncodedColumn::Plain(_) => None,
        }
    }

    /// The value at `row` (unpacking one value if packed).
    #[inline]
    pub fn get(&self, row: usize) -> i32 {
        match self {
            EncodedColumn::Plain(v) => v[row],
            EncodedColumn::Packed(p) => p.get(row),
        }
    }
}

/// Extracts value `i` from a raw packed word stream — re-exported here so
/// encoding-aware device kernels and the view share one bit-math
/// implementation.
pub use crate::bitpack::unpack_at as unpack_word_at;

/// Convenience: decodes the whole column (tests and oracles only — hot
/// paths must stay on [`ColumnRead`]).
pub fn decode_all(col: &EncodedColumn) -> Vec<i32> {
    match col {
        EncodedColumn::Plain(v) => v.clone(),
        EncodedColumn::Packed(p) => p.unpack(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_bytes_and_ratio() {
        assert_eq!(Encoding::Plain.bytes_for(100), 400);
        let e = Encoding::BitPacked { bits: 8 };
        assert_eq!(e.bytes_for(1600), 1600);
        assert!((e.ratio() - 4.0).abs() < 1e-12);
        assert!(e.is_packed() && !Encoding::Plain.is_packed());
        // bits = 32 is a valid no-op pack: ~1.0 ratio, word-rounded bytes.
        let noop = Encoding::BitPacked { bits: 32 };
        assert!((noop.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(noop.bytes_for(3), 16); // 96 bits -> two 8-byte words
    }

    #[test]
    fn packed_min_matches_domain() {
        assert_eq!(
            Encoding::packed_min(&[0, 1]),
            Encoding::BitPacked { bits: 1 }
        );
        assert_eq!(
            Encoding::packed_min(&[0, 255]),
            Encoding::BitPacked { bits: 8 }
        );
    }

    #[test]
    fn encoded_column_roundtrips_under_every_encoding() {
        let values: Vec<i32> = (0..500).map(|i| (i * 37) % 1000).collect();
        for enc in [
            Encoding::Plain,
            Encoding::packed_min(&values),
            Encoding::BitPacked { bits: 32 },
        ] {
            let col = EncodedColumn::encode(&values, enc);
            assert_eq!(col.encoding(), enc);
            assert_eq!(col.len(), values.len());
            assert_eq!(decode_all(&col), values, "{enc:?}");
            let s = col.slice();
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(s.value(i), v, "{enc:?} row {i}");
                assert_eq!(col.get(i), v);
            }
            assert_eq!(s.row_count(), values.len());
            assert_eq!(s.encoding(), enc);
        }
    }

    #[test]
    fn bit_width_one_column() {
        let bits: Vec<i32> = (0..200).map(|i| i % 2).collect();
        let col = EncodedColumn::encode(&bits, Encoding::packed_min(&bits));
        assert_eq!(col.encoding(), Encoding::BitPacked { bits: 1 });
        assert_eq!(col.size_bytes(), 200usize.div_ceil(64) * 8);
        assert_eq!(decode_all(&col), bits);
    }

    #[test]
    fn packed_uses_fewer_bytes() {
        let values: Vec<i32> = (0..4096).map(|i| i % 128).collect();
        let plain = EncodedColumn::encode(&values, Encoding::Plain);
        let packed = EncodedColumn::encode(&values, Encoding::packed_min(&values));
        assert!(packed.size_bytes() * 4 <= plain.size_bytes());
        assert!(packed.as_packed().is_some() && plain.as_packed().is_none());
    }

    #[test]
    fn column_read_through_trait_objects_and_slices() {
        fn sum<C: ColumnRead + ?Sized>(c: &C) -> i64 {
            (0..c.row_count()).map(|i| c.value(i) as i64).sum()
        }
        let values: Vec<i32> = (0..100).collect();
        let packed = PackedColumn::pack(&values, 7).unwrap();
        assert_eq!(sum(&values[..]), 4950);
        assert_eq!(sum(&packed.view()), 4950);
        assert_eq!(sum(&ColumnSlice::Packed(packed.view())), 4950);
    }
}

#![warn(missing_docs)]

//! # crystal-storage — columnar storage substrate
//!
//! The thin storage layer the engines share: typed columns, tables with
//! schemas, dictionary encoding for strings (the paper dictionary-encodes
//! all SSB string columns to 4-byte integers before loading, Section 5.2),
//! bit-packing (the Section 5.5 compression direction), and deterministic
//! workload generators for the microbenchmarks (uniform columns with
//! calibrated selectivities, unique key domains, Zipf-skewed values).
//!
//! [`encoding`] is the compressed-execution seam: a per-column
//! [`Encoding`] descriptor, the [`EncodedColumn`] it materializes, and
//! the [`ColumnRead`] trait every fused kernel in the workspace reads
//! through — one scan implementation, monomorphized per physical format,
//! never a full-column decompress.

pub mod bitpack;
pub mod column;
pub mod dict;
pub mod encoding;
pub mod gen;
pub mod io;
pub mod table;

pub use bitpack::{PackedColumn, PackedView};
pub use column::Column;
pub use dict::Dictionary;
pub use encoding::{ColumnRead, ColumnSlice, EncodedColumn, Encoding};
pub use table::{Schema, Table};

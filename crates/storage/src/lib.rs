//! # crystal-storage — columnar storage substrate
//!
//! The thin storage layer the engines share: typed columns, tables with
//! schemas, dictionary encoding for strings (the paper dictionary-encodes
//! all SSB string columns to 4-byte integers before loading, Section 5.2),
//! and deterministic workload generators for the microbenchmarks
//! (uniform columns with calibrated selectivities, unique key domains,
//! Zipf-skewed values).

pub mod bitpack;
pub mod column;
pub mod dict;
pub mod gen;
pub mod io;
pub mod table;

pub use bitpack::PackedColumn;
pub use column::Column;
pub use dict::Dictionary;
pub use table::{Schema, Table};

//! Columnar persistence: a minimal little-endian binary format for saving
//! and reloading generated datasets, so benchmark runs don't pay
//! regeneration (SSB SF 20's dimensions take noticeable time to build).
//!
//! Format: magic `CRYS`, version u32, column count u32, then per column a
//! tagged payload (`0` = i32 column, `1` = f32 column, `2` = packed column
//! with bit width) with a u64 length prefix. All integers little-endian.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::bitpack::PackedColumn;
use crate::column::Column;

const MAGIC: &[u8; 4] = b"CRYS";
const VERSION: u32 = 1;

/// A named saved column.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredColumn {
    /// Plain 4-byte integers (tag `0`).
    Int(Vec<i32>),
    /// 4-byte floats (tag `1`).
    Float(Vec<f32>),
    /// Bit-packed integers with their width (tag `2`).
    Packed(PackedColumn),
}

impl From<Column> for StoredColumn {
    fn from(c: Column) -> Self {
        match c {
            Column::Int(v) => StoredColumn::Int(v),
            Column::Float(v) => StoredColumn::Float(v),
        }
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Saves columns to `path`.
pub fn save_columns(path: &Path, cols: &[StoredColumn]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, cols.len() as u32)?;
    for col in cols {
        match col {
            StoredColumn::Int(v) => {
                write_u32(&mut w, 0)?;
                write_u64(&mut w, v.len() as u64)?;
                for &x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            StoredColumn::Float(v) => {
                write_u32(&mut w, 1)?;
                write_u64(&mut w, v.len() as u64)?;
                for &x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            StoredColumn::Packed(p) => {
                write_u32(&mut w, 2)?;
                write_u32(&mut w, p.bits())?;
                write_u64(&mut w, p.len() as u64)?;
                write_u64(&mut w, p.words().len() as u64)?;
                for &word in p.words() {
                    w.write_all(&word.to_le_bytes())?;
                }
            }
        }
    }
    w.flush()
}

/// Loads columns from `path`.
pub fn load_columns(path: &Path) -> io::Result<Vec<StoredColumn>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut cols = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = read_u32(&mut r)?;
        match tag {
            0 => {
                let len = read_u64(&mut r)? as usize;
                let mut v = Vec::with_capacity(len);
                let mut b = [0u8; 4];
                for _ in 0..len {
                    r.read_exact(&mut b)?;
                    v.push(i32::from_le_bytes(b));
                }
                cols.push(StoredColumn::Int(v));
            }
            1 => {
                let len = read_u64(&mut r)? as usize;
                let mut v = Vec::with_capacity(len);
                let mut b = [0u8; 4];
                for _ in 0..len {
                    r.read_exact(&mut b)?;
                    v.push(f32::from_le_bytes(b));
                }
                cols.push(StoredColumn::Float(v));
            }
            2 => {
                let bits = read_u32(&mut r)?;
                let len = read_u64(&mut r)? as usize;
                let words_len = read_u64(&mut r)? as usize;
                let mut words = Vec::with_capacity(words_len);
                let mut b = [0u8; 8];
                for _ in 0..words_len {
                    r.read_exact(&mut b)?;
                    words.push(u64::from_le_bytes(b));
                }
                cols.push(StoredColumn::Packed(PackedColumn::from_raw(
                    bits, len, words,
                )));
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown column tag {t}"),
                ))
            }
        }
    }
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crystal_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_mixed_columns() {
        let path = tmp("mixed");
        let cols = vec![
            StoredColumn::Int(vec![1, -2, 3]),
            StoredColumn::Float(vec![0.5, -1.25]),
            StoredColumn::Packed(PackedColumn::pack(&[1, 2, 3, 4095], 12).unwrap()),
            StoredColumn::Int(Vec::new()),
        ];
        save_columns(&path, &cols).unwrap();
        let loaded = load_columns(&path).unwrap();
        assert_eq!(loaded, cols);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        let err = load_columns(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("trunc");
        let cols = vec![StoredColumn::Int(vec![1, 2, 3, 4, 5])];
        save_columns(&path, &cols).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_columns(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_roundtrip_preserves_values() {
        let path = tmp("packed");
        let values: Vec<i32> = (0..5000).map(|i| i % 8192).collect();
        let packed = PackedColumn::pack(&values, 13).unwrap();
        save_columns(&path, &[StoredColumn::Packed(packed)]).unwrap();
        match &load_columns(&path).unwrap()[0] {
            StoredColumn::Packed(p) => assert_eq!(p.unpack(), values),
            _ => panic!("expected packed column"),
        }
        std::fs::remove_file(&path).ok();
    }
}

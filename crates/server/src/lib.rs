//! # crystal-server — a concurrent multi-tenant query frontend
//!
//! The evaluation sections of the paper run one query at a time; a real
//! deployment serves many tenants against one host and one device. This
//! crate adds the missing frontend: a deterministic, discrete-time
//! scheduler that admits queries from N tenant streams under a
//! concurrency and device-memory budget, interleaves execution as
//! **morsel grants** with deficit-round-robin fairness across tenants,
//! and overlaps the host executor with the shared
//! [`DeviceSession`] — the paper's data-resident regime, now shared
//! between tenants instead of rebuilt per stream.
//!
//! ## The model
//!
//! Time is simulated, not measured: the host charge for a grant is the
//! Section 3.1 scan bound pro-rated to the granted rows; a device query
//! is charged its **overlapped makespan** — uploads run on the simulated
//! copy stream while kernels run on the compute stream, so the query
//! costs `ramp + max(transfer − ramp, kernels)` rather than
//! `transfer + kernels` (the ramp is the first
//! [`UPLOAD_CHUNK_BYTES`](crystal_hardware::UPLOAD_CHUNK_BYTES) chunk
//! the first kernel must wait for; a warm query that ships nothing is
//! charged kernels alone). The charge is applied incrementally: each
//! grant re-evaluates the makespan with the kernel seconds launched so
//! far and charges the (always non-negative) delta. Two resource clocks
//! — host and device — advance independently, which is what models the
//! host/coprocessor overlap; the makespan is the later of the two when
//! the last query completes. Because all charges derive from the same
//! deterministic simulator and cost models, every run of [`serve`] over
//! the same streams produces byte-identical results *and* timings.
//!
//! ## Scheduling policy
//!
//! * **Closed loop per tenant** — at most one in-flight query per
//!   tenant, plus a global [`ServerConfig::max_inflight`] cap.
//! * **Placement at admission** — each query is routed by the
//!   residency-aware cost model
//!   (`copro::choose_placement_session`); additionally, an otherwise
//!   *idle* device is offered cost-model-Host queries
//!   ([`ServerConfig::offload_idle_device`]): the device's cycles are
//!   free while the host is the contended resource, and the uploads it
//!   pays warm the shared cache, flipping later placements for every
//!   tenant at once.
//! * **Admission control** — device placement pins the query's working
//!   set through the session's pin ledger
//!   ([`DeviceQueryJob::admit`]); a typed
//!   [`SessionOom`](crystal_runtime::SessionOom) simply
//!   falls the query back to the host instead of panicking or evicting
//!   another tenant's pinned set.
//! * **Deficit round robin** — each grant opportunity adds a morsel
//!   quantum to the chosen tenant's deficit and grants at most that many
//!   rows, so long queries cannot starve short ones and the p99/p50
//!   latency ratio stays bounded under contention.
//!
//! Splitting a query into grants changes neither the per-block tile
//! schedule nor the order of the commutative integer aggregate updates,
//! so the served results are byte-identical to a serial replay of the
//! same streams — the property the concurrent differential suite
//! asserts against [`serve_serial`].

use crystal_cpu::exec::MORSEL_SIZE;
use crystal_gpu_sim::{ExecStats, Gpu};
use crystal_hardware::{CpuSpec, HardwareProfile, PcieSpec};
use crystal_models::calibration::{BoundsSource, CalibrationStore};
use crystal_runtime::{DeviceSession, SessionStats};
use crystal_ssb::encoding::FactEncodings;
use crystal_ssb::engines::copro::{self, Placement, PlacementDecision};
use crystal_ssb::engines::gpu::{DeviceQueryJob, DeviceShardedJob};
use crystal_ssb::exec::{HostQueryJob, PartitionedHostJob, PipelineMode};
use crystal_ssb::plan::StarQuery;
use crystal_ssb::{PartitionedFact, QueryResult, SsbData};

/// Knobs of the multi-tenant frontend.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Global cap on concurrently admitted queries (the per-tenant
    /// closed loop already caps each tenant at one).
    pub max_inflight: usize,
    /// Deficit-round-robin quantum, in morsels per grant opportunity.
    pub quantum_morsels: usize,
    /// Rows per morsel (defaults to the host executor's
    /// [`MORSEL_SIZE`]).
    pub morsel_rows: usize,
    /// Optional device cache budget in bytes (see
    /// [`DeviceSession::with_budget`]); `None` uses the full device.
    pub device_budget: Option<usize>,
    /// Route a cost-model-Host query to the device when no device query
    /// is in flight: the idle device's time is free while the host is
    /// contended, and its uploads warm the shared cache for everyone.
    pub offload_idle_device: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 4,
            quantum_morsels: 4,
            morsel_rows: MORSEL_SIZE,
            device_budget: None,
            offload_idle_device: true,
        }
    }
}

impl ServerConfig {
    fn quantum_rows(&self) -> usize {
        (self.quantum_morsels * self.morsel_rows).max(1)
    }
}

/// Which executor a query ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The morsel-driven CPU executor.
    Host,
    /// The Crystal engine through the shared [`DeviceSession`].
    Device,
}

/// One served query with its timing and its (byte-exact) result.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// Tenant the query came from.
    pub tenant: usize,
    /// Position in that tenant's stream.
    pub index: usize,
    pub backend: Backend,
    /// Simulated time at admission.
    pub admitted_at: f64,
    /// Simulated time at completion (on the backend's clock).
    pub completed_at: f64,
    /// The admission-time placement decision with its provenance (the
    /// predicted seconds of each side, and whether measured history
    /// contributed) — a misroute is debuggable from the report alone.
    /// Note the decision records the *cost model's* side; idle-resource
    /// steering or an OOM fallback can still run the query elsewhere
    /// (compare against [`CompletedQuery::backend`]).
    pub decision: PlacementDecision,
    pub result: QueryResult,
}

impl CompletedQuery {
    /// Queueing plus execution latency, simulated seconds.
    pub fn latency(&self) -> f64 {
        self.completed_at - self.admitted_at
    }
}

/// Outcome of serving a set of tenant streams.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Every query, in completion order.
    pub completed: Vec<CompletedQuery>,
    /// Simulated wall time until the last completion: the later of the
    /// two resource clocks (host and device run in parallel).
    pub makespan_secs: f64,
    /// Simulated seconds the host executor spent on grants.
    pub host_busy_secs: f64,
    /// Simulated seconds the device spent on transfers, builds and
    /// kernel grants.
    pub device_busy_secs: f64,
    /// Device session counters at the end of the run (summed across the
    /// per-tenant sessions for [`serve_serial`]).
    pub stats: SessionStats,
    /// Device-level execution counters attributed to this run: kernel
    /// launches (builds + fused probe steps) and HBM traffic, diffed from
    /// the device's cumulative [`ExecStats`] around the serve. The
    /// launch-count bands read this — a fused device query costs one
    /// probe launch per morsel grant plus its cold build kernels.
    pub exec: ExecStats,
}

impl ServeReport {
    /// Served throughput over the simulated makespan.
    pub fn queries_per_sec(&self) -> f64 {
        self.completed.len() as f64 / self.makespan_secs.max(1e-30)
    }

    /// Latency percentile (`p` in 0..=100) over every served query,
    /// linearly interpolated between order statistics. The nearest-rank
    /// rounding this replaces collapsed p99 onto p50 (or the max) at
    /// small sample counts, biasing the pinned p99/p50 contention band;
    /// interpolation keeps tail percentiles distinct at any sample size.
    /// Sorting uses `f64::total_cmp`, so a NaN latency (impossible by
    /// construction, but defensively) can no longer panic the sort.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.completed.iter().map(CompletedQuery::latency).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(f64::total_cmp);
        let rank = (p / 100.0).clamp(0.0, 1.0) * (lat.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        lat[lo] + (lat[hi] - lat[lo]) * (rank - lo as f64)
    }

    /// Queries that ran on the device.
    pub fn device_queries(&self) -> usize {
        self.completed
            .iter()
            .filter(|c| c.backend == Backend::Device)
            .count()
    }

    /// Queries whose admission decision drew on measured history (zero
    /// for the static `serve` paths and for a cold calibration store).
    pub fn blended_decisions(&self) -> usize {
        self.completed
            .iter()
            .filter(|c| c.decision.source == BoundsSource::Blended)
            .count()
    }

    /// One tenant's results in stream order (for byte-identity checks).
    pub fn tenant_results(&self, tenant: usize) -> Vec<&QueryResult> {
        let mut rows: Vec<(usize, &QueryResult)> = self
            .completed
            .iter()
            .filter(|c| c.tenant == tenant)
            .map(|c| (c.index, &c.result))
            .collect();
        rows.sort_by_key(|(i, _)| *i);
        rows.into_iter().map(|(_, r)| r).collect()
    }
}

enum Job<'a> {
    Host(Box<HostQueryJob<'a>>),
    Device(Box<DeviceQueryJob<'a>>),
}

/// Overlapped device makespan of one query: its uploads stream on the
/// copy engine while its kernels run on the compute stream, so only the
/// first-chunk ramp serializes and the steady states race. A warm query
/// (`dma <= 0`) issues no DMA and is charged its kernels alone — it pays
/// no transfer latency either.
fn overlapped_makespan(ramp: f64, dma: f64, kern: f64) -> f64 {
    if dma <= 0.0 {
        kern
    } else {
        ramp + (dma - ramp).max(kern)
    }
}

struct InFlight<'a> {
    tenant: usize,
    index: usize,
    admitted_at: f64,
    backend: Backend,
    /// Host scan-bound seconds per granted row (0 for device jobs).
    per_row_host_secs: f64,
    /// Device kernel seconds launched so far (builds + probe grants).
    charged_dev_secs: f64,
    /// Serialized PCIe seconds of this job's uploads (what the
    /// calibration observation records; the clock charges the
    /// overlapped makespan instead).
    charged_transfer_secs: f64,
    /// First-chunk ramp of the admission upload — the serialized prefix
    /// of [`overlapped_makespan`].
    ramp_secs: f64,
    /// Overlapped makespan already charged to the device clock; each
    /// grant re-evaluates and charges the delta.
    charged_makespan_secs: f64,
    /// Bytes the admission actually uploaded.
    uploaded_bytes: usize,
    decision: PlacementDecision,
    job: Job<'a>,
}

/// The closed calibration loop a `*_calibrated` serve runs under: the
/// shared [`CalibrationStore`] every completion records into (and every
/// admission routes by), plus the spec-sheet [`HardwareProfile`] the
/// analytic prior believes. The *actual* machine is whatever specs the
/// serve call itself executes and charges on — when the two profiles
/// agree the loop only learns simulator-vs-model slack; when they
/// deviate (a link trained down, a clock over spec) the blended bounds
/// steer routing back toward the measured truth.
pub struct Calibration<'c> {
    /// The store shared across queries (and across serve calls, if the
    /// caller keeps it).
    pub store: &'c mut CalibrationStore,
    /// The hardware the static prior believes (e.g.
    /// [`crystal_hardware::table2_profile`]).
    pub model: HardwareProfile,
}

/// Serves `tenants` (one query stream per tenant) through one shared
/// host executor and one shared [`DeviceSession`], interleaved as
/// deficit-round-robin morsel grants. Deterministic: same streams, same
/// results, same simulated timings.
pub fn serve<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
) -> ServeReport {
    serve_impl(gpu, cpu, pcie, d, tenants, cfg, None)
}

/// [`serve`] with the closed calibration loop: admission routes through
/// `copro::choose_placement_calibrated_session` on the *model* profile
/// (blended with whatever the store has learned), and every completion
/// records its observed transfer/kernel/host seconds back into the
/// store. Execution and the resource clocks still run on the `gpu` /
/// `cpu` / `pcie` the serve is called with — the actual machine — so
/// the loop converges toward measured reality. With a cold store and
/// `cal.model` equal to the serve specs, routing is bit-identical to
/// [`serve`].
pub fn serve_calibrated<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
    cal: &mut Calibration<'_>,
) -> ServeReport {
    serve_impl(gpu, cpu, pcie, d, tenants, cfg, Some(cal))
}

fn serve_impl<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
    mut cal: Option<&mut Calibration<'_>>,
) -> ServeReport {
    let exec_before = gpu.exec_stats();
    let mut sess = match cfg.device_budget {
        Some(b) => DeviceSession::with_budget(gpu, b),
        None => DeviceSession::new(gpu),
    };
    let enc = FactEncodings::plain();
    let nt = tenants.len();
    let n_rows = d.lineorder.rows().max(1);
    let quantum = cfg.quantum_rows() as f64;

    let mut next_q = vec![0usize; nt];
    let mut deficit = vec![0.0f64; nt];
    let mut inflight: Vec<InFlight<'a>> = Vec::new();
    let mut completed: Vec<CompletedQuery> = Vec::new();
    let (mut host_clock, mut dev_clock) = (0.0f64, 0.0f64);
    let (mut host_busy, mut dev_busy) = (0.0f64, 0.0f64);
    // Time of the latest completion event processed — the scheduler's
    // "now" for admission decisions.
    let mut now = 0.0f64;
    let (mut admit_ptr, mut host_ptr, mut dev_ptr) = (0usize, 0usize, 0usize);

    loop {
        // Admission: fill free slots round-robin across tenants with
        // pending work and nothing in flight.
        while inflight.len() < cfg.max_inflight.max(1) {
            let mut admitted = false;
            for k in 0..nt {
                let t = (admit_ptr + k) % nt;
                if next_q[t] >= tenants[t].len() || inflight.iter().any(|j| j.tenant == t) {
                    continue;
                }
                let idx = next_q[t];
                let q = &tenants[t][idx];
                // Routing: the static residency-aware bound on the serve
                // specs, or — under calibration — the blended bound on
                // the *model* profile. The host clock is always charged
                // on the serve specs (the actual machine), so a skewed
                // model profile can misroute but never mischarge.
                let actual = copro::choose_placement_session(&sess, d, q, &enc, cpu, pcie);
                let decision: PlacementDecision = match cal.as_ref() {
                    None => actual.into(),
                    Some(c) => copro::choose_placement_calibrated_session(
                        c.store,
                        &sess,
                        d,
                        q,
                        &enc,
                        &c.model.cpu,
                        &c.model.gpu,
                        &c.model.pcie,
                    ),
                };
                let device_busy_now = inflight.iter().any(|j| j.backend == Backend::Device);
                let host_busy_now = inflight.iter().any(|j| j.backend == Backend::Host);
                // Idle-resource steering keeps both executors busy:
                // an idle device is offered the query even when the
                // cost model says Host (its cycles are free and its
                // uploads warm the shared cache); symmetrically, an
                // idle host keeps a query even when the warm model
                // says Coprocessor. With both busy, the residency-
                // aware cost model decides.
                let want_device = if cfg.offload_idle_device && !device_busy_now {
                    true
                } else if cfg.offload_idle_device && !host_busy_now {
                    false
                } else {
                    decision.placement == Placement::Coprocessor
                };
                let mut placed = None;
                if want_device {
                    let before = sess.stats().clone();
                    // Admission control: pin the working set under the
                    // session's ledger; an OOM falls back to the host.
                    if let Ok(job) = DeviceQueryJob::admit(&mut sess, d, None, q) {
                        let uploaded = sess.stats().uploaded_since(&before);
                        let transfer = pcie.transfer_secs(uploaded);
                        let ramp = pcie.chunk_ramp_secs(uploaded);
                        let dma = if uploaded > 0 { transfer } else { 0.0 };
                        let setup = overlapped_makespan(ramp, dma, job.sim_secs_so_far());
                        dev_clock = dev_clock.max(now) + setup;
                        dev_busy += setup;
                        placed = Some(InFlight {
                            tenant: t,
                            index: idx,
                            admitted_at: now,
                            backend: Backend::Device,
                            per_row_host_secs: 0.0,
                            charged_dev_secs: job.sim_secs_so_far(),
                            charged_transfer_secs: dma,
                            ramp_secs: ramp,
                            charged_makespan_secs: setup,
                            uploaded_bytes: uploaded,
                            decision,
                            job: Job::Device(Box::new(job)),
                        });
                    }
                }
                let job = placed.unwrap_or_else(|| {
                    host_clock = host_clock.max(now);
                    InFlight {
                        tenant: t,
                        index: idx,
                        admitted_at: now,
                        backend: Backend::Host,
                        per_row_host_secs: actual.host_secs / n_rows as f64,
                        charged_dev_secs: 0.0,
                        charged_transfer_secs: 0.0,
                        ramp_secs: 0.0,
                        charged_makespan_secs: 0.0,
                        uploaded_bytes: 0,
                        decision,
                        job: Job::Host(Box::new(HostQueryJob::new(d, q, PipelineMode::Vectorized))),
                    }
                });
                next_q[t] += 1;
                inflight.push(job);
                admit_ptr = (t + 1) % nt;
                admitted = true;
                break;
            }
            if !admitted {
                break;
            }
        }

        if inflight.is_empty() {
            // Nothing running and (since host admission is infallible)
            // nothing left to admit: the streams are drained.
            debug_assert!((0..nt).all(|t| next_q[t] >= tenants[t].len()));
            break;
        }

        // Grant on the resource whose clock lags (that is what runs
        // "next" when both are busy; a resource without jobs idles).
        let has_host = inflight.iter().any(|j| j.backend == Backend::Host);
        let has_dev = inflight.iter().any(|j| j.backend == Backend::Device);
        let res = match (has_host, has_dev) {
            (true, true) => {
                if host_clock <= dev_clock {
                    Backend::Host
                } else {
                    Backend::Device
                }
            }
            (true, false) => Backend::Host,
            _ => Backend::Device,
        };

        // Deficit round robin across tenants with a job on this resource.
        let ptr = if res == Backend::Host {
            &mut host_ptr
        } else {
            &mut dev_ptr
        };
        let (t, pos) = (0..nt)
            .filter_map(|k| {
                let t = (*ptr + k) % nt;
                inflight
                    .iter()
                    .position(|j| j.tenant == t && j.backend == res)
                    .map(|pos| (t, pos))
            })
            .next()
            .expect("a job exists on the granted resource");
        *ptr = (t + 1) % nt;
        deficit[t] += quantum;
        let j = &mut inflight[pos];
        let remaining = match &j.job {
            Job::Host(h) => h.remaining_rows(),
            Job::Device(g) => g.remaining_rows(),
        };
        let grant = remaining.min(deficit[t] as usize).max(1);
        deficit[t] -= grant as f64;

        let done = match &mut j.job {
            Job::Host(h) => {
                let done = h.step(grant);
                let secs = grant as f64 * j.per_row_host_secs;
                host_clock += secs;
                host_busy += secs;
                done
            }
            Job::Device(g) => {
                let done = g.step(&mut sess, grant);
                let total = g.sim_secs_so_far();
                j.charged_dev_secs = total;
                // Re-evaluate the overlapped makespan with the kernels
                // launched so far and charge the delta: once the kernel
                // sum outgrows the in-flight transfer, every further
                // grant is pure compute time.
                let dma = if j.uploaded_bytes > 0 {
                    j.charged_transfer_secs
                } else {
                    0.0
                };
                let target = overlapped_makespan(j.ramp_secs, dma, total);
                let delta = target - j.charged_makespan_secs;
                j.charged_makespan_secs = target;
                dev_clock += delta;
                dev_busy += delta;
                done
            }
        };

        if done {
            let j = inflight.swap_remove(pos);
            deficit[j.tenant] = 0.0;
            let completed_at = match j.backend {
                Backend::Host => host_clock,
                Backend::Device => dev_clock,
            };
            now = now.max(completed_at);
            // Close the loop: feed the completed query's charged times
            // back into the store as an observation against the model
            // profile's predictions.
            if let Some(c) = cal.as_mut() {
                let q = &tenants[j.tenant][j.index];
                let (kernel, host) = match j.backend {
                    Backend::Device => (Some(j.charged_dev_secs), None),
                    Backend::Host => (None, Some(j.per_row_host_secs * n_rows as f64)),
                };
                copro::record_query_observation(
                    c.store,
                    &c.model,
                    d,
                    q,
                    &enc,
                    j.uploaded_bytes,
                    j.charged_transfer_secs,
                    kernel,
                    host,
                );
            }
            let result = match j.job {
                Job::Host(h) => h.finish().0,
                Job::Device(g) => g.finish(&mut sess).result,
            };
            completed.push(CompletedQuery {
                tenant: j.tenant,
                index: j.index,
                backend: j.backend,
                admitted_at: j.admitted_at,
                completed_at,
                decision: j.decision,
                result,
            });
        }
    }

    let exec = sess.gpu().exec_stats().since(&exec_before);
    let stats = sess.stats().clone();
    ServeReport {
        completed,
        makespan_secs: host_clock.max(dev_clock),
        host_busy_secs: host_busy,
        device_busy_secs: dev_busy,
        stats,
        exec,
    }
}

enum ShardedJob<'a> {
    Host(Box<PartitionedHostJob<'a>>),
    Device(Box<DeviceShardedJob<'a>>),
}

struct ShardedInFlight<'a> {
    tenant: usize,
    index: usize,
    admitted_at: f64,
    backend: Backend,
    /// Host scan-bound seconds per granted (live) row.
    per_row_host_secs: f64,
    /// Device kernel seconds launched so far, across every shard.
    charged_dev_secs: f64,
    /// Serialized PCIe seconds of every upload so far — first-shard
    /// admission plus each later shard's (pre)fetch, accumulated as the
    /// job's `uploaded_bytes()` grows grant by grant. Feeds the
    /// calibration observation; the clock charges the overlapped
    /// makespan instead.
    charged_transfer_secs: f64,
    /// First-chunk ramp of the earliest non-empty upload.
    ramp_secs: f64,
    /// Overlapped makespan already charged to the device clock.
    charged_makespan_secs: f64,
    /// Bytes uploaded so far across all shard admissions.
    uploaded_bytes: usize,
    decision: PlacementDecision,
    job: ShardedJob<'a>,
}

/// The whole-query placement summary of a sharded split: the two
/// all-on-one-side totals, compared the same way the admission gate
/// compares them.
fn sharded_decision(
    c: &copro::ShardedChoice,
    source: BoundsSource,
    samples: u64,
) -> PlacementDecision {
    PlacementDecision {
        placement: if c.device_only_secs < c.host_only_secs {
            Placement::Coprocessor
        } else {
            Placement::Host
        },
        device_secs: c.device_only_secs,
        host_secs: c.host_only_secs,
        source,
        samples,
    }
}

/// [`serve`] over a [`PartitionedFact`]: zone-map pruning drops dead
/// shards before any grant, device jobs advance shard-by-shard under
/// shard-granular residency keys (each grant covers one *(query, shard)*
/// pair's rows), and a **mid-query** shard-admission
/// [`SessionOom`](crystal_runtime::SessionOom) abandons the device half
/// and restarts the query on the host — partial device work is
/// discarded, so every served result stays byte-identical to the
/// unsharded pipeline's. Deterministic, like [`serve`].
pub fn serve_sharded<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    pf: &'a PartitionedFact,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
) -> ServeReport {
    serve_sharded_impl(gpu, cpu, pcie, d, pf, tenants, cfg, None)
}

/// [`serve_sharded`] with the closed calibration loop of
/// [`serve_calibrated`]: per-shard admission bounds blend the model
/// profile's prior with shard-granular measured history, and every
/// completion records an aggregated live-shard observation back into
/// the store.
#[allow(clippy::too_many_arguments)]
pub fn serve_sharded_calibrated<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    pf: &'a PartitionedFact,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
    cal: &mut Calibration<'_>,
) -> ServeReport {
    serve_sharded_impl(gpu, cpu, pcie, d, pf, tenants, cfg, Some(cal))
}

#[allow(clippy::too_many_arguments)]
fn serve_sharded_impl<'a>(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &'a SsbData,
    pf: &'a PartitionedFact,
    tenants: &'a [Vec<StarQuery>],
    cfg: &ServerConfig,
    mut cal: Option<&mut Calibration<'_>>,
) -> ServeReport {
    let exec_before = gpu.exec_stats();
    let mut sess = match cfg.device_budget {
        Some(b) => DeviceSession::with_budget(gpu, b),
        None => DeviceSession::new(gpu),
    };
    let nt = tenants.len();
    let quantum = cfg.quantum_rows() as f64;

    // Host scan-bound seconds per live row of one query: the pruned
    // whole-host bound pro-rated over the rows a grant actually scans.
    let host_row_secs = |sess: &DeviceSession<'_>, q: &StarQuery| -> f64 {
        let c = copro::choose_placement_sharded(sess, d, pf, q, cpu, pcie);
        c.host_only_secs / pf.live_rows(q).max(1) as f64
    };

    let mut next_q = vec![0usize; nt];
    let mut deficit = vec![0.0f64; nt];
    let mut inflight: Vec<ShardedInFlight<'a>> = Vec::new();
    let mut completed: Vec<CompletedQuery> = Vec::new();
    let (mut host_clock, mut dev_clock) = (0.0f64, 0.0f64);
    let (mut host_busy, mut dev_busy) = (0.0f64, 0.0f64);
    let mut now = 0.0f64;
    let (mut admit_ptr, mut host_ptr, mut dev_ptr) = (0usize, 0usize, 0usize);

    loop {
        // Admission, as in `serve`, with the sharded placement model:
        // the query goes to the device when the summed per-shard device
        // bound beats the summed host bound (both pruning-aware).
        while inflight.len() < cfg.max_inflight.max(1) {
            let mut admitted = false;
            for k in 0..nt {
                let t = (admit_ptr + k) % nt;
                if next_q[t] >= tenants[t].len() || inflight.iter().any(|j| j.tenant == t) {
                    continue;
                }
                let idx = next_q[t];
                let q = &tenants[t][idx];
                // As in `serve_impl`: route on the (possibly blended)
                // model-profile bounds, charge on the serve specs.
                let actual = copro::choose_placement_sharded(&sess, d, pf, q, cpu, pcie);
                let decision = match cal.as_ref() {
                    None => sharded_decision(&actual, BoundsSource::Static, 0),
                    Some(c) => {
                        let cc = copro::choose_placement_calibrated_sharded(
                            c.store,
                            &sess,
                            d,
                            pf,
                            q,
                            &c.model.cpu,
                            &c.model.gpu,
                            &c.model.pcie,
                        );
                        sharded_decision(&cc.choice, cc.source, cc.samples)
                    }
                };
                let device_busy_now = inflight.iter().any(|j| j.backend == Backend::Device);
                let host_busy_now = inflight.iter().any(|j| j.backend == Backend::Host);
                let want_device = if cfg.offload_idle_device && !device_busy_now {
                    true
                } else if cfg.offload_idle_device && !host_busy_now {
                    false
                } else {
                    decision.placement == Placement::Coprocessor
                };
                let mut placed = None;
                if want_device {
                    let before = sess.stats().clone();
                    if let Ok(job) = DeviceShardedJob::admit(&mut sess, d, pf, q) {
                        let uploaded = sess.stats().uploaded_since(&before);
                        let transfer = pcie.transfer_secs(uploaded);
                        let ramp = pcie.chunk_ramp_secs(uploaded);
                        let dma = if uploaded > 0 { transfer } else { 0.0 };
                        let setup = overlapped_makespan(ramp, dma, job.sim_secs_so_far());
                        dev_clock = dev_clock.max(now) + setup;
                        dev_busy += setup;
                        placed = Some(ShardedInFlight {
                            tenant: t,
                            index: idx,
                            admitted_at: now,
                            backend: Backend::Device,
                            per_row_host_secs: 0.0,
                            charged_dev_secs: job.sim_secs_so_far(),
                            charged_transfer_secs: dma,
                            ramp_secs: ramp,
                            charged_makespan_secs: setup,
                            uploaded_bytes: uploaded,
                            decision,
                            job: ShardedJob::Device(Box::new(job)),
                        });
                    }
                }
                let job = placed.unwrap_or_else(|| {
                    host_clock = host_clock.max(now);
                    ShardedInFlight {
                        tenant: t,
                        index: idx,
                        admitted_at: now,
                        backend: Backend::Host,
                        per_row_host_secs: actual.host_only_secs / pf.live_rows(q).max(1) as f64,
                        charged_dev_secs: 0.0,
                        charged_transfer_secs: 0.0,
                        ramp_secs: 0.0,
                        charged_makespan_secs: 0.0,
                        uploaded_bytes: 0,
                        decision,
                        job: ShardedJob::Host(Box::new(PartitionedHostJob::new(
                            d,
                            pf,
                            q,
                            PipelineMode::Vectorized,
                        ))),
                    }
                });
                next_q[t] += 1;
                inflight.push(job);
                admit_ptr = (t + 1) % nt;
                admitted = true;
                break;
            }
            if !admitted {
                break;
            }
        }

        if inflight.is_empty() {
            debug_assert!((0..nt).all(|t| next_q[t] >= tenants[t].len()));
            break;
        }

        let has_host = inflight.iter().any(|j| j.backend == Backend::Host);
        let has_dev = inflight.iter().any(|j| j.backend == Backend::Device);
        let res = match (has_host, has_dev) {
            (true, true) => {
                if host_clock <= dev_clock {
                    Backend::Host
                } else {
                    Backend::Device
                }
            }
            (true, false) => Backend::Host,
            _ => Backend::Device,
        };

        let ptr = if res == Backend::Host {
            &mut host_ptr
        } else {
            &mut dev_ptr
        };
        let (t, pos) = (0..nt)
            .filter_map(|k| {
                let t = (*ptr + k) % nt;
                inflight
                    .iter()
                    .position(|j| j.tenant == t && j.backend == res)
                    .map(|pos| (t, pos))
            })
            .next()
            .expect("a job exists on the granted resource");
        *ptr = (t + 1) % nt;
        deficit[t] += quantum;
        let j = &mut inflight[pos];
        let remaining = match &j.job {
            ShardedJob::Host(h) => h.remaining_rows(),
            ShardedJob::Device(g) => g.remaining_rows(),
        };
        let grant = remaining.min(deficit[t] as usize).max(1);
        deficit[t] -= grant as f64;

        let mut oom = false;
        let done = match &mut j.job {
            ShardedJob::Host(h) => {
                let done = h.step(grant);
                let secs = grant.min(remaining) as f64 * j.per_row_host_secs;
                host_clock += secs;
                host_busy += secs;
                done
            }
            ShardedJob::Device(g) => match g.step(&mut sess, grant) {
                Ok(done) => {
                    let total = g.sim_secs_so_far();
                    j.charged_dev_secs = total;
                    // Later shards upload (or prefetch) as the job
                    // advances; fold each new batch into the serialized
                    // transfer total before re-evaluating the makespan.
                    let up = g.uploaded_bytes();
                    if up > j.uploaded_bytes {
                        let batch = up - j.uploaded_bytes;
                        j.charged_transfer_secs += pcie.transfer_secs(batch);
                        if j.uploaded_bytes == 0 {
                            j.ramp_secs = pcie.chunk_ramp_secs(batch);
                        }
                        j.uploaded_bytes = up;
                    }
                    let dma = if j.uploaded_bytes > 0 {
                        j.charged_transfer_secs
                    } else {
                        0.0
                    };
                    let target = overlapped_makespan(j.ramp_secs, dma, total);
                    let delta = target - j.charged_makespan_secs;
                    j.charged_makespan_secs = target;
                    dev_clock += delta;
                    dev_busy += delta;
                    done
                }
                // The next shard no longer fits beside the other
                // tenants' pinned sets: discard the device half and
                // restart the whole query on the host (the restart is
                // what keeps the result byte-identical).
                Err(_) => {
                    oom = true;
                    false
                }
            },
        };

        if oom {
            let q = &tenants[j.tenant][j.index];
            let host_job = PartitionedHostJob::new(d, pf, q, PipelineMode::Vectorized);
            let old = std::mem::replace(&mut j.job, ShardedJob::Host(Box::new(host_job)));
            if let ShardedJob::Device(g) = old {
                g.abandon(&mut sess);
            }
            j.backend = Backend::Host;
            j.per_row_host_secs = host_row_secs(&sess, q);
            host_clock = host_clock.max(now);
            continue;
        }

        if done {
            let j = inflight.swap_remove(pos);
            deficit[j.tenant] = 0.0;
            let completed_at = match j.backend {
                Backend::Host => host_clock,
                Backend::Device => dev_clock,
            };
            now = now.max(completed_at);
            if let Some(c) = cal.as_mut() {
                let q = &tenants[j.tenant][j.index];
                let (kernel, host) = match j.backend {
                    Backend::Device => (Some(j.charged_dev_secs), None),
                    Backend::Host => (
                        None,
                        Some(j.per_row_host_secs * pf.live_rows(q).max(1) as f64),
                    ),
                };
                copro::record_sharded_observation(
                    c.store,
                    &c.model,
                    pf,
                    q,
                    j.uploaded_bytes,
                    j.charged_transfer_secs,
                    kernel,
                    host,
                );
            }
            let result = match j.job {
                ShardedJob::Host(h) => h.finish().0,
                ShardedJob::Device(g) => g.finish(&mut sess).result,
            };
            completed.push(CompletedQuery {
                tenant: j.tenant,
                index: j.index,
                backend: j.backend,
                admitted_at: j.admitted_at,
                completed_at,
                decision: j.decision,
                result,
            });
        }
    }

    let exec = sess.gpu().exec_stats().since(&exec_before);
    let stats = sess.stats().clone();
    ServeReport {
        completed,
        makespan_secs: host_clock.max(dev_clock),
        host_busy_secs: host_busy,
        device_busy_secs: dev_busy,
        stats,
        exec,
    }
}

/// The serial baseline: each tenant replayed to completion in turn
/// through a **fresh** device session (today's one-tenant-per-session
/// lifecycle), every query run whole where the residency-aware cost
/// model places it. Same per-grant cost model as [`serve`], one clock,
/// no overlap — the denominator of the contention speedup.
pub fn serve_serial(
    gpu: &mut Gpu,
    cpu: &CpuSpec,
    pcie: &PcieSpec,
    d: &SsbData,
    tenants: &[Vec<StarQuery>],
    cfg: &ServerConfig,
) -> ServeReport {
    let exec_before = gpu.exec_stats();
    let enc = FactEncodings::plain();
    let mut clock = 0.0f64;
    let (mut host_busy, mut dev_busy) = (0.0f64, 0.0f64);
    let mut completed = Vec::new();
    let mut stats = SessionStats::default();

    for (t, stream) in tenants.iter().enumerate() {
        let mut sess = match cfg.device_budget {
            Some(b) => DeviceSession::with_budget(gpu, b),
            None => DeviceSession::new(gpu),
        };
        for (idx, q) in stream.iter().enumerate() {
            let admitted_at = clock;
            let choice = copro::choose_placement_session(&sess, d, q, &enc, cpu, pcie);
            let mut served = None;
            if choice.placement == Placement::Coprocessor {
                let before = sess.stats().clone();
                if let Ok(mut job) = DeviceQueryJob::admit(&mut sess, d, None, q) {
                    let done = job.step(&mut sess, usize::MAX);
                    debug_assert!(done);
                    let uploaded = sess.stats().uploaded_since(&before);
                    let run = job.finish(&mut sess);
                    let secs = pcie.transfer_secs(uploaded) + run.sim_secs();
                    dev_busy += secs;
                    clock += secs;
                    served = Some((Backend::Device, run.result));
                }
            }
            let (backend, result) = served.unwrap_or_else(|| {
                let mut job = HostQueryJob::new(d, q, PipelineMode::Vectorized);
                let done = job.step(usize::MAX);
                debug_assert!(done);
                host_busy += choice.host_secs;
                clock += choice.host_secs;
                (Backend::Host, job.finish().0)
            });
            completed.push(CompletedQuery {
                tenant: t,
                index: idx,
                backend,
                admitted_at,
                completed_at: clock,
                decision: choice.into(),
                result,
            });
        }
        accumulate(&mut stats, sess.stats());
    }

    let exec = gpu.exec_stats().since(&exec_before);
    ServeReport {
        completed,
        makespan_secs: clock,
        host_busy_secs: host_busy,
        device_busy_secs: dev_busy,
        stats,
        exec,
    }
}

/// Sums session counters across the per-tenant serial sessions.
fn accumulate(acc: &mut SessionStats, s: &SessionStats) {
    acc.col_hits += s.col_hits;
    acc.col_misses += s.col_misses;
    acc.ht_hits += s.ht_hits;
    acc.ht_misses += s.ht_misses;
    acc.evictions += s.evictions;
    acc.uploaded_bytes += s.uploaded_bytes;
    acc.build_secs += s.build_secs;
    acc.cached_bytes = s.cached_bytes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystal_hardware::{intel_i7_6900, nvidia_v100, pcie_gen3, table2_profile};
    use crystal_ssb::arbitrary::random_star_query;
    use crystal_ssb::engines::reference;

    fn data() -> SsbData {
        SsbData::generate_scaled(1, 0.002, 20_260_730)
    }

    fn streams(d: &SsbData, tenants: usize, per_tenant: usize) -> Vec<Vec<StarQuery>> {
        (0..tenants)
            .map(|t| {
                (0..per_tenant)
                    .map(|i| random_star_query(d, 20_260_730 + (t * per_tenant + i) as u64 % 6))
                    .collect()
            })
            .collect()
    }

    /// Every served result matches the reference oracle, for every
    /// tenant, on both the concurrent and the serial path.
    #[test]
    fn served_results_match_the_oracle() {
        let d = data();
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut gpu = Gpu::new(nvidia_v100());
        let conc = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
        let mut gpu2 = Gpu::new(nvidia_v100());
        let serial = serve_serial(&mut gpu2, &cpu, &pcie, &d, &tenants, &cfg);
        assert_eq!(conc.completed.len(), 12);
        assert_eq!(serial.completed.len(), 12);
        for (t, stream) in tenants.iter().enumerate() {
            let got = conc.tenant_results(t);
            let ser = serial.tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                let expected = reference::execute(&d, q);
                assert_eq!(*got[i], expected, "tenant {t} query {i} (concurrent)");
                assert_eq!(*ser[i], expected, "tenant {t} query {i} (serial)");
            }
        }
    }

    /// The serve report's launch counters attribute device kernels to the
    /// run: zero when nothing ran on the device, at least one fused probe
    /// launch per device query when it did, and deterministic across
    /// identical runs.
    #[test]
    fn serve_report_counts_device_launches() {
        let d = data();
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut gpu = Gpu::new(nvidia_v100());
        let a = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
        if a.device_queries() == 0 {
            assert_eq!(a.exec, ExecStats::default(), "no device work, no launches");
        } else {
            assert!(a.exec.launches >= a.device_queries() as u64);
            assert!(a.exec.hbm_read_bytes > 0);
        }
        // Counters diff from the device's cumulative ExecStats, so a
        // second serve on the same (now warm) device attributes only its
        // own launches — determinism carries over to the counters.
        let b = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
        assert!(
            b.exec.launches <= a.exec.launches,
            "warm run rebuilds nothing"
        );
    }

    /// The scheduler is deterministic: two runs over the same streams
    /// produce identical completions and identical clocks.
    #[test]
    fn serving_is_deterministic() {
        let d = data();
        let tenants = streams(&d, 4, 3);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut g1 = Gpu::new(nvidia_v100());
        let a = serve(&mut g1, &cpu, &pcie, &d, &tenants, &cfg);
        let mut g2 = Gpu::new(nvidia_v100());
        let b = serve(&mut g2, &cpu, &pcie, &d, &tenants, &cfg);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!((x.tenant, x.index), (y.tenant, y.index));
            assert_eq!(x.result, y.result);
            assert_eq!(x.completed_at, y.completed_at);
        }
    }

    /// Admission under a starved device budget falls queries back to the
    /// host instead of panicking, and the answers still hold.
    #[test]
    fn starved_device_budget_degrades_to_the_host() {
        let d = data();
        let tenants = streams(&d, 2, 3);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        // A device too small for any working set (one fact column is
        // ~48KB here): every device admission OOMs through the ledger.
        let mut spec = nvidia_v100();
        spec.mem_capacity = 16 * 1024;
        let mut gpu = Gpu::new(spec);
        let report = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
        assert_eq!(report.completed.len(), 6);
        assert_eq!(report.device_queries(), 0, "nothing fits the budget");
        for (t, stream) in tenants.iter().enumerate() {
            let got = report.tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                assert_eq!(*got[i], reference::execute(&d, q), "tenant {t} query {i}");
            }
        }
    }

    /// Sharded serving is correct and deterministic: every tenant's
    /// results match the reference oracle byte-for-byte, and two runs
    /// over the same streams produce identical completions and clocks.
    #[test]
    fn sharded_serving_matches_the_oracle_deterministically() {
        let d = data();
        let pf = PartitionedFact::partition(&d, 6, &FactEncodings::plain());
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut gpu = Gpu::new(nvidia_v100());
        let a = serve_sharded(&mut gpu, &cpu, &pcie, &d, &pf, &tenants, &cfg);
        assert_eq!(a.completed.len(), 12);
        for (t, stream) in tenants.iter().enumerate() {
            let got = a.tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                assert_eq!(
                    *got[i],
                    reference::execute(&d, q),
                    "tenant {t} query {i} (sharded)"
                );
            }
        }
        let mut g2 = Gpu::new(nvidia_v100());
        let b = serve_sharded(&mut g2, &cpu, &pcie, &d, &pf, &tenants, &cfg);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!((x.tenant, x.index), (y.tenant, y.index));
            assert_eq!(x.result, y.result);
            assert_eq!(x.completed_at, y.completed_at);
        }
    }

    /// Sharded serving under a budget smaller than the sharded working
    /// set: shards rotate through the cache (or queries restart on the
    /// host mid-flight), and every answer still matches the oracle.
    #[test]
    fn sharded_serving_survives_a_starved_budget() {
        let d = data();
        let pf = PartitionedFact::partition(&d, 8, &FactEncodings::plain());
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig {
            device_budget: Some(pf.size_bytes() / 3),
            ..ServerConfig::default()
        };
        let mut gpu = Gpu::new(nvidia_v100());
        let report = serve_sharded(&mut gpu, &cpu, &pcie, &d, &pf, &tenants, &cfg);
        assert_eq!(report.completed.len(), 12);
        for (t, stream) in tenants.iter().enumerate() {
            let got = report.tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                assert_eq!(
                    *got[i],
                    reference::execute(&d, q),
                    "tenant {t} query {i} under pressure"
                );
            }
        }
    }

    /// The idle-device offload warms the shared cache: a repeated-shape
    /// workload ends with device placements and cache hits.
    #[test]
    fn idle_device_offload_warms_the_shared_cache() {
        let d = data();
        let tenants = streams(&d, 4, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut gpu = Gpu::new(nvidia_v100());
        let report = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
        assert!(report.device_queries() > 0, "offload never engaged");
        assert!(
            report.stats.col_hits > 0,
            "tenants never shared residency: {:?}",
            report.stats
        );
    }

    /// A cold calibration store is the static model bit-for-bit: the
    /// calibrated server reproduces the uncalibrated run's routing,
    /// clocks, and results exactly, and every surfaced decision still
    /// reads `Static` with zero samples at admission.
    #[test]
    fn cold_calibrated_serve_matches_static_serve_exactly() {
        let d = data();
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut g1 = Gpu::new(nvidia_v100());
        let plain = serve(&mut g1, &cpu, &pcie, &d, &tenants, &cfg);
        let mut store = CalibrationStore::default();
        let mut cal = Calibration {
            store: &mut store,
            model: table2_profile(),
        };
        let mut g2 = Gpu::new(nvidia_v100());
        let cald = serve_calibrated(&mut g2, &cpu, &pcie, &d, &tenants, &cfg, &mut cal);
        assert_eq!(plain.makespan_secs.to_bits(), cald.makespan_secs.to_bits());
        assert_eq!(plain.completed.len(), cald.completed.len());
        for (x, y) in plain.completed.iter().zip(&cald.completed) {
            assert_eq!(
                (x.tenant, x.index, x.backend),
                (y.tenant, y.index, y.backend)
            );
            assert_eq!(x.completed_at.to_bits(), y.completed_at.to_bits());
            assert_eq!(x.result, y.result);
            // The first admissions see an empty store; only later ones may
            // have warmed past the threshold, so just check the cold ones.
            if y.decision.samples == 0 {
                assert_eq!(y.decision.source, BoundsSource::Static);
            }
        }
    }

    /// Replaying the same streams through a shared store warms it past
    /// the trust threshold: later passes route on `Blended` bounds, the
    /// report surfaces them, and every answer still matches the oracle.
    #[test]
    fn warm_calibrated_serve_blends_and_stays_correct() {
        let d = data();
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut store = CalibrationStore::default();
        let mut gpu = Gpu::new(nvidia_v100());
        let mut last = None;
        for _ in 0..4 {
            let mut cal = Calibration {
                store: &mut store,
                model: table2_profile(),
            };
            last = Some(serve_calibrated(
                &mut gpu, &cpu, &pcie, &d, &tenants, &cfg, &mut cal,
            ));
        }
        let report = last.unwrap();
        assert!(
            report.blended_decisions() > 0,
            "four passes over a 12-query stream never warmed the store"
        );
        for (t, stream) in tenants.iter().enumerate() {
            let got = report.tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                assert_eq!(*got[i], reference::execute(&d, q), "tenant {t} query {i}");
            }
        }
    }

    /// The sharded analogue of the cold-store identity: calibrated
    /// sharded serving with an empty store reproduces the static sharded
    /// run exactly, and a warmed store keeps the answers byte-identical.
    #[test]
    fn calibrated_sharded_serve_is_cold_identical_and_warm_correct() {
        let d = data();
        let pf = PartitionedFact::partition(&d, 6, &FactEncodings::plain());
        let tenants = streams(&d, 3, 4);
        let cpu = intel_i7_6900();
        let pcie = pcie_gen3();
        let cfg = ServerConfig::default();
        let mut g1 = Gpu::new(nvidia_v100());
        let plain = serve_sharded(&mut g1, &cpu, &pcie, &d, &pf, &tenants, &cfg);
        let mut store = CalibrationStore::default();
        let mut g2 = Gpu::new(nvidia_v100());
        let mut report = None;
        for pass in 0..3 {
            let mut cal = Calibration {
                store: &mut store,
                model: table2_profile(),
            };
            let r =
                serve_sharded_calibrated(&mut g2, &cpu, &pcie, &d, &pf, &tenants, &cfg, &mut cal);
            if pass == 0 {
                assert_eq!(plain.makespan_secs.to_bits(), r.makespan_secs.to_bits());
                for (x, y) in plain.completed.iter().zip(&r.completed) {
                    assert_eq!(
                        (x.tenant, x.index, x.backend),
                        (y.tenant, y.index, y.backend)
                    );
                    assert_eq!(x.completed_at.to_bits(), y.completed_at.to_bits());
                }
            }
            report = Some(r);
        }
        for (t, stream) in tenants.iter().enumerate() {
            let got = report.as_ref().unwrap().tenant_results(t);
            for (i, q) in stream.iter().enumerate() {
                assert_eq!(
                    *got[i],
                    reference::execute(&d, q),
                    "tenant {t} query {i} (warm sharded)"
                );
            }
        }
    }
}

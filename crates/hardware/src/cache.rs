//! Cache-level descriptions shared by the CPU and GPU models.

/// A single level of a cache hierarchy, as used by the analytical join model
/// (Section 4.3 of the paper) and by the set-associative cache simulator in
/// `crystal-gpu-sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// Human-readable name ("L2", "L3", ...).
    pub name: &'static str,
    /// Capacity in bytes.
    pub size: usize,
    /// Bandwidth out of this level, bytes/sec.
    pub bandwidth: f64,
    /// Line size in bytes (the random-access granularity).
    pub line: usize,
    /// Associativity used when this level is simulated.
    pub assoc: usize,
}

impl CacheLevel {
    /// Probability that a uniformly random access to a working set of
    /// `working_set` bytes hits this level, assuming LRU retention:
    /// `min(size / working_set, 1)` — exactly the paper's
    /// `pi_K = min(S_K / H, 1)`.
    pub fn hit_ratio(&self, working_set: usize) -> f64 {
        if working_set == 0 {
            return 1.0;
        }
        (self.size as f64 / working_set as f64).min(1.0)
    }

    /// Number of lines in this cache.
    pub fn num_lines(&self) -> usize {
        self.size / self.line
    }

    /// Number of sets when simulated with the configured associativity.
    pub fn num_sets(&self) -> usize {
        (self.size / self.line / self.assoc).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> CacheLevel {
        CacheLevel {
            name: "L2",
            size: 6 * 1024 * 1024,
            bandwidth: 2.2e12,
            line: 128,
            assoc: 16,
        }
    }

    #[test]
    fn hit_ratio_clamps_to_one() {
        assert_eq!(l2().hit_ratio(1024), 1.0);
    }

    #[test]
    fn hit_ratio_is_capacity_fraction() {
        let c = l2();
        let ws = 12 * 1024 * 1024; // 2x the cache
        assert!((c.hit_ratio(ws) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_of_empty_working_set() {
        assert_eq!(l2().hit_ratio(0), 1.0);
    }

    #[test]
    fn geometry() {
        let c = l2();
        assert_eq!(c.num_lines(), 49_152);
        assert_eq!(c.num_sets(), 3_072);
    }
}

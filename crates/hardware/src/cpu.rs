//! CPU hardware description (paper Table 2, left column).

use crate::cache::CacheLevel;

/// Characteristics of a multicore CPU relevant to in-memory analytics.
///
/// The fields mirror Table 2 of the paper plus the two calibration constants
/// the CPU timing model needs (documented at [`crate::intel_i7_6900`]).
#[derive(Debug, Clone)]
pub struct CpuSpec {
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// SMT ways per core (2 = hyper-threading).
    pub smt: usize,
    pub clock_ghz: f64,
    /// 32-bit SIMD lanes per vector instruction (AVX2 = 8).
    pub simd_lanes_32: usize,
    /// Per-core L1 data cache, bytes.
    pub l1_size: usize,
    /// Per-core L2 cache, bytes.
    pub l2_size: usize,
    /// Shared L3 cache, bytes.
    pub l3_size: usize,
    /// Cache line, bytes (the DRAM random-access granularity).
    pub cache_line: usize,
    pub mem_capacity: usize,
    /// DRAM read bandwidth, bytes/sec.
    pub read_bw: f64,
    /// DRAM write bandwidth, bytes/sec.
    pub write_bw: f64,
    /// Aggregate L2 bandwidth, bytes/sec (estimated; Table 2 leaves it blank).
    pub l2_bw: f64,
    /// L3 bandwidth, bytes/sec.
    pub l3_bw: f64,
    /// Effective cycles lost per branch misprediction (calibration constant).
    pub branch_miss_penalty_cycles: f64,
    /// Fraction of peak DRAM bandwidth achieved by dependent random accesses
    /// (calibration constant; CPUs cannot hide miss latency on irregular
    /// access patterns — Section 5.3).
    pub random_access_efficiency: f64,
}

impl CpuSpec {
    /// Total hardware threads (`cores * smt`).
    pub fn threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Aggregate scalar flops: `cores * clock` (1 FMA port assumed).
    pub fn scalar_flops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9
    }

    /// Aggregate SIMD flops over 32-bit lanes.
    pub fn simd_flops(&self) -> f64 {
        self.scalar_flops() * self.simd_lanes_32 as f64
    }

    /// The cache hierarchy as seen by one thread doing random accesses:
    /// private L2 then shared L3 (L1 is too small to matter for the paper's
    /// hash-table experiments but is included for completeness).
    pub fn cache_hierarchy(&self) -> Vec<CacheLevel> {
        vec![
            CacheLevel {
                name: "L1",
                size: self.l1_size,
                bandwidth: self.l2_bw * 2.0,
                line: self.cache_line,
                assoc: 8,
            },
            CacheLevel {
                name: "L2",
                size: self.l2_size,
                bandwidth: self.l2_bw,
                line: self.cache_line,
                assoc: 8,
            },
            CacheLevel {
                name: "L3",
                size: self.l3_size,
                bandwidth: self.l3_bw,
                line: self.cache_line,
                assoc: 16,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use crate::intel_i7_6900;

    #[test]
    fn threads_counts_smt() {
        assert_eq!(intel_i7_6900().threads(), 16);
    }

    #[test]
    fn simd_is_8x_scalar() {
        let c = intel_i7_6900();
        assert!((c.simd_flops() / c.scalar_flops() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_ordered_by_size() {
        let h = intel_i7_6900().cache_hierarchy();
        assert!(h.windows(2).all(|w| w[0].size <= w[1].size));
        assert_eq!(h.last().unwrap().name, "L3");
    }
}

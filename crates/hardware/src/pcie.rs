//! PCIe link description (the CPU<->GPU interconnect).

/// Chunk size of a pipelined host-to-device upload: the copy engine ships
/// a column as fixed-size chunks so the consumer kernel can start once the
/// first chunk lands instead of waiting for the whole transfer. 16 KiB
/// keeps the ramp (latency + one chunk) latency-dominated on every
/// modeled link while still amortizing the per-chunk engine overheads
/// real DMA rings see.
pub const UPLOAD_CHUNK_BYTES: usize = 16 * 1024;

/// Number of chunks a pipelined upload of `bytes` is split into (at least
/// one, so zero-byte transfers stay well-defined).
pub fn upload_chunks(bytes: usize) -> usize {
    bytes.div_ceil(UPLOAD_CHUNK_BYTES).max(1)
}

/// The host-device interconnect. The paper measures 12.8 GBps bidirectional
/// on PCIe 3.0 x16 and shows (Section 3.1) that since this is below the CPU's
/// own memory bandwidth, the coprocessor execution model cannot beat a good
/// CPU-only implementation.
#[derive(Debug, Clone)]
pub struct PcieSpec {
    /// Sustained transfer bandwidth, bytes/sec.
    pub bandwidth: f64,
    /// Per-transfer setup latency, microseconds.
    pub latency_us: f64,
}

impl PcieSpec {
    /// Time to ship `bytes` across the link, seconds.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / self.bandwidth
    }

    /// Ramp-up of a chunked upload: seconds until the *first* chunk of a
    /// `bytes`-sized transfer has landed and a consumer kernel may start
    /// (the engine latency plus one [`UPLOAD_CHUNK_BYTES`] chunk —
    /// or the whole payload when it is smaller than a chunk). Zero for a
    /// zero-byte transfer: nothing gates on data that never ships.
    pub fn chunk_ramp_secs(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_us * 1e-6 + bytes.min(UPLOAD_CHUNK_BYTES) as f64 / self.bandwidth
    }

    /// Makespan of a `bytes`-sized upload split into `chunks` chunks and
    /// overlapped with `exec_secs` of dependent kernel work: the consumer
    /// starts after the first chunk (the ramp) and then races the
    /// remaining transfer, so
    ///
    /// ```text
    /// pipelined = ramp + max(transfer - first_chunk, exec)
    /// ```
    ///
    /// Boundary behavior (pinned by the unit tests below): with one chunk
    /// this is exactly `transfer_secs(bytes) + exec_secs` (the serial
    /// upper bound — the kernel waits for everything); as `chunks` grows
    /// the ramp shrinks toward the bare latency and the total approaches
    /// the Section-3.1 overlapped bound `latency + max(bw_time, exec)`.
    /// When the transfer dominates (`exec` fits under the post-ramp tail)
    /// the total equals `transfer_secs(bytes)` up to rounding — pipelining
    /// never beats the link, it only hides compute behind it.
    pub fn pipelined_secs(&self, bytes: usize, chunks: usize, exec_secs: f64) -> f64 {
        if bytes == 0 {
            return exec_secs;
        }
        let chunk = bytes as f64 / chunks.max(1) as f64 / self.bandwidth;
        let ramp = self.latency_us * 1e-6 + chunk;
        ramp + (bytes as f64 / self.bandwidth - chunk).max(exec_secs)
    }
}

#[cfg(test)]
mod tests {
    use crate::pcie_gen3;

    #[test]
    fn transfer_time_is_bandwidth_bound_for_large_payloads() {
        let p = pcie_gen3();
        // 1.92 GB (four SF-20 SSB columns) ~ 150ms, matching Figure 3's
        // coprocessor floor.
        let t = p.transfer_secs(4 * 480_000_000);
        assert!((0.14..0.16).contains(&t), "t = {t}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let p = pcie_gen3();
        let t = p.transfer_secs(64);
        assert!(t >= 10.0e-6);
    }

    #[test]
    fn one_chunk_pipelining_is_exactly_serial() {
        let p = pcie_gen3();
        for bytes in [64usize, 192_000, 4 * 480_000_000] {
            for exec in [0.0, 5e-6, 1.0] {
                let serial = p.transfer_secs(bytes) + exec;
                let pipe = p.pipelined_secs(bytes, 1, exec);
                assert_eq!(pipe.to_bits(), serial.to_bits(), "{bytes} B, {exec} s");
            }
        }
    }

    #[test]
    fn many_chunks_approach_the_overlapped_bound() {
        let p = pcie_gen3();
        let bytes = 4 * 480_000_000usize;
        let bw = bytes as f64 / p.bandwidth;
        for exec in [0.0, bw / 2.0, bw, 2.0 * bw] {
            let overlapped = p.latency_us * 1e-6 + bw.max(exec);
            let pipe = p.pipelined_secs(bytes, 1 << 20, exec);
            assert!(
                (pipe - overlapped).abs() < 2.0 * bw / (1 << 20) as f64,
                "pipe {pipe} vs overlapped {overlapped}"
            );
            assert!(pipe >= overlapped, "pipelining can only add the ramp");
        }
    }

    #[test]
    fn transfer_bound_pipelining_costs_exactly_the_transfer() {
        let p = pcie_gen3();
        // An exact multiple of the chunk size, so equal-split chunks and
        // the fixed-size ramp agree bit-for-bit.
        let bytes = 12 * super::UPLOAD_CHUNK_BYTES;
        let chunks = super::upload_chunks(bytes);
        // Kernel far below the post-ramp tail: total == transfer time.
        let pipe = p.pipelined_secs(bytes, chunks, 1e-9);
        assert!((pipe - p.transfer_secs(bytes)).abs() < 1e-15);
        // Kernel far above: total == ramp + kernel.
        let pipe = p.pipelined_secs(bytes, chunks, 1.0);
        assert!((pipe - (p.chunk_ramp_secs(bytes) + 1.0)).abs() < 1e-15);
    }

    #[test]
    fn pipelined_is_monotone_and_bounded_by_serial() {
        let p = pcie_gen3();
        let bytes = 288_000usize;
        let chunks = super::upload_chunks(bytes);
        let mut last = 0.0;
        for i in 0..20 {
            let exec = i as f64 * 2e-6;
            let pipe = p.pipelined_secs(bytes, chunks, exec);
            assert!(pipe >= last, "monotone in kernel seconds");
            assert!(pipe <= p.transfer_secs(bytes) + exec + 1e-15);
            assert!(pipe >= p.transfer_secs(bytes) - 1e-15);
            last = pipe;
        }
    }

    #[test]
    fn zero_bytes_cost_only_the_kernel() {
        let p = pcie_gen3();
        assert_eq!(p.pipelined_secs(0, 4, 0.25), 0.25);
        assert_eq!(p.chunk_ramp_secs(0), 0.0);
        assert_eq!(super::upload_chunks(0), 1);
        assert_eq!(super::upload_chunks(1), 1);
        assert_eq!(super::upload_chunks(super::UPLOAD_CHUNK_BYTES + 1), 2);
    }
}

//! PCIe link description (the CPU<->GPU interconnect).

/// The host-device interconnect. The paper measures 12.8 GBps bidirectional
/// on PCIe 3.0 x16 and shows (Section 3.1) that since this is below the CPU's
/// own memory bandwidth, the coprocessor execution model cannot beat a good
/// CPU-only implementation.
#[derive(Debug, Clone)]
pub struct PcieSpec {
    /// Sustained transfer bandwidth, bytes/sec.
    pub bandwidth: f64,
    /// Per-transfer setup latency, microseconds.
    pub latency_us: f64,
}

impl PcieSpec {
    /// Time to ship `bytes` across the link, seconds.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use crate::pcie_gen3;

    #[test]
    fn transfer_time_is_bandwidth_bound_for_large_payloads() {
        let p = pcie_gen3();
        // 1.92 GB (four SF-20 SSB columns) ~ 150ms, matching Figure 3's
        // coprocessor floor.
        let t = p.transfer_secs(4 * 480_000_000);
        assert!((0.14..0.16).contains(&t), "t = {t}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let p = pcie_gen3();
        let t = p.transfer_secs(64);
        assert!(t >= 10.0e-6);
    }
}

//! Hardware specifications for the CPU/GPU analytics study.
//!
//! This crate encodes Table 2 of the paper (the Intel i7-6900 CPU and the
//! Nvidia V100 GPU used throughout the evaluation) plus the measured PCIe
//! characteristics, and exposes the handful of derived quantities the paper's
//! models rely on (bandwidth ratio, cache-line granularities, occupancy
//! limits).
//!
//! Everything downstream — the GPU simulator (`crystal-gpu-sim`), the CPU
//! cost accounting and the analytical models (`crystal-models`) — is
//! parameterized by these structs, so alternative hardware can be modeled by
//! constructing different values.

pub mod bytes;
pub mod cache;
pub mod cpu;
pub mod gpu;
pub mod pcie;

pub use bytes::{GIB, KIB, MIB};
pub use cache::CacheLevel;
pub use cpu::CpuSpec;
pub use gpu::GpuSpec;
pub use pcie::{upload_chunks, PcieSpec, UPLOAD_CHUNK_BYTES};

/// The Skylake-class Intel i7-6900 from Table 2 of the paper.
///
/// 8 cores (16 with SMT), AVX2 (8 × 32-bit SIMD lanes), 64 GB of DDR4 with
/// 53 GBps read / 55 GBps write bandwidth, 157 GBps L3 bandwidth.
pub fn intel_i7_6900() -> CpuSpec {
    CpuSpec {
        name: "Intel i7-6900".to_string(),
        cores: 8,
        smt: 2,
        clock_ghz: 3.2,
        simd_lanes_32: 8,
        l1_size: 32 * KIB,
        l2_size: 256 * KIB,
        l3_size: 20 * MIB,
        cache_line: 64,
        mem_capacity: 64 * GIB,
        read_bw: 53.0e9,
        write_bw: 55.0e9,
        l2_bw: 400.0e9,
        l3_bw: 157.0e9,
        // Effective penalty of one branch misprediction amortized across the
        // out-of-order window, in cycles. Calibrated against the Figure 12
        // branching-select hump (~2x slowdown at 50% selectivity).
        branch_miss_penalty_cycles: 7.0,
        // Fraction of peak bandwidth achievable under dependent random
        // accesses (no prefetching possible). Calibrated so the out-of-cache
        // join ratio lands at the paper's measured 10.5x instead of the
        // ideal 8.1x (Figure 13 / Section 4.3 discussion).
        random_access_efficiency: 0.8,
    }
}

/// The Nvidia V100 from Table 2 of the paper.
///
/// 80 SMs x 64 cores, 32 GB HBM2 at 880 GBps (measured), 6 MB L2 at
/// 2.2 TBps, 10.7 TBps aggregate L1/shared-memory bandwidth.
pub fn nvidia_v100() -> GpuSpec {
    GpuSpec {
        name: "Nvidia V100".to_string(),
        num_sms: 80,
        cores_per_sm: 64,
        warp_size: 32,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        shared_mem_per_sm: 96 * KIB,
        registers_per_sm: 65_536,
        clock_ghz: 1.53,
        mem_capacity: 32 * GIB,
        read_bw: 880.0e9,
        write_bw: 880.0e9,
        l2_size: 6 * MIB,
        l2_bw: 2.2e12,
        l1_smem_bw: 10.7e12,
        cache_line: 128,
        sector: 32,
        // Effective bytes crossing the L2->SM path per random probe: two
        // 32-byte sectors (slot + linear-probe neighbor). Calibrated against
        // the in-cache segments of Figure 13 (5.5x and 14.5x CPU/GPU
        // ratios).
        l2_transfer_bytes: 64,
        // Throughput-reciprocal of serialized atomics to the *same* address
        // (they are resolved in L2, one at a time). Calibrated against the
        // small-thread-block regime of Figure 9 and the 19 ms
        // independent-threads select of Section 3.3.
        atomic_same_addr_ns: 0.7,
        kernel_launch_us: 5.0,
    }
}

/// An Ampere-class successor GPU (A100 40GB SXM): the "other hardware"
/// data point for Section 5.4's claim that the analysis generalizes —
/// ~1.8x the V100's HBM bandwidth, 40 MB of L2.
pub fn nvidia_a100() -> GpuSpec {
    GpuSpec {
        name: "Nvidia A100".to_string(),
        num_sms: 108,
        cores_per_sm: 64,
        warp_size: 32,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        shared_mem_per_sm: 164 * KIB,
        registers_per_sm: 65_536,
        clock_ghz: 1.41,
        mem_capacity: 40 * GIB,
        read_bw: 1555.0e9,
        write_bw: 1555.0e9,
        l2_size: 40 * MIB,
        l2_bw: 4.5e12,
        l1_smem_bw: 19.4e12,
        cache_line: 128,
        sector: 32,
        l2_transfer_bytes: 64,
        atomic_same_addr_ns: 0.6,
        kernel_launch_us: 5.0,
    }
}

/// A DDR5 dual-socket server-class CPU (for the same what-if): ~4x the
/// paper CPU's bandwidth and cores.
pub fn server_cpu_2023() -> CpuSpec {
    CpuSpec {
        name: "32-core DDR5 server".to_string(),
        cores: 32,
        smt: 2,
        clock_ghz: 2.8,
        simd_lanes_32: 16,
        l1_size: 48 * KIB,
        l2_size: 2 * MIB,
        l3_size: 64 * MIB,
        cache_line: 64,
        mem_capacity: 512 * GIB,
        read_bw: 220.0e9,
        write_bw: 200.0e9,
        l2_bw: 1.6e12,
        l3_bw: 600.0e9,
        branch_miss_penalty_cycles: 7.0,
        random_access_efficiency: 0.8,
    }
}

/// The PCIe 3.0 x16 link between host and device, as measured in the paper
/// (Section 5: "We measured the bidirectional PCIe transfer bandwidth to be
/// 12.8 GBps").
pub fn pcie_gen3() -> PcieSpec {
    PcieSpec {
        bandwidth: 12.8e9,
        latency_us: 10.0,
    }
}

/// One machine's full spec triple — the CPU, the GPU, and the PCIe link
/// between them. Bundles what a placement model needs to price both
/// sides of a query, so a *believed* (spec-sheet) profile and the
/// *actual* (possibly deviating) machine can be passed around as single
/// values — the distinction the online calibration layer exists to
/// close.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    /// The host CPU.
    pub cpu: CpuSpec,
    /// The device GPU.
    pub gpu: GpuSpec,
    /// The host↔device interconnect.
    pub pcie: PcieSpec,
}

/// The paper's Table-2 machine as one [`HardwareProfile`]:
/// [`intel_i7_6900`] + [`nvidia_v100`] + [`pcie_gen3`].
pub fn table2_profile() -> HardwareProfile {
    HardwareProfile {
        cpu: intel_i7_6900(),
        gpu: nvidia_v100(),
        pcie: pcie_gen3(),
    }
}

/// Ratio of GPU to CPU read memory bandwidth — the paper's headline ~16.2x.
pub fn bandwidth_ratio(cpu: &CpuSpec, gpu: &GpuSpec) -> f64 {
    gpu.read_bw / cpu.read_bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ratio_matches_paper() {
        let r = bandwidth_ratio(&intel_i7_6900(), &nvidia_v100());
        assert!((r - 16.2).abs() < 0.5, "ratio {r} should be ~16.2");
    }

    #[test]
    fn v100_table2_values() {
        let g = nvidia_v100();
        assert_eq!(g.l2_size, 6 * MIB);
        assert_eq!(g.cache_line, 128);
        assert_eq!(g.mem_capacity, 32 * GIB);
        assert!((g.read_bw - 880.0e9).abs() < 1.0);
    }

    #[test]
    fn cpu_table2_values() {
        let c = intel_i7_6900();
        assert_eq!(c.l3_size, 20 * MIB);
        assert_eq!(c.cache_line, 64);
        assert_eq!(c.cores, 8);
        assert_eq!(c.threads(), 16);
    }

    #[test]
    fn pcie_slower_than_both_memories() {
        let (c, g, p) = (intel_i7_6900(), nvidia_v100(), pcie_gen3());
        assert!(p.bandwidth < c.read_bw);
        assert!(p.bandwidth < g.read_bw);
    }

    #[test]
    fn newer_hardware_pairing_keeps_the_bandwidth_gap() {
        // Section 5.4's generalization claim: the GPU/CPU bandwidth ratio
        // of a 2023-class pairing is still ~7x, so the qualitative
        // conclusions carry over.
        let r = bandwidth_ratio(&server_cpu_2023(), &nvidia_a100());
        assert!((5.0..10.0).contains(&r), "ratio {r}");
        assert!(nvidia_a100().read_bw > nvidia_v100().read_bw);
    }
}

//! Byte-size constants and human-readable formatting helpers.

/// One kibibyte (1024 bytes).
pub const KIB: usize = 1024;
/// One mebibyte.
pub const MIB: usize = 1024 * KIB;
/// One gibibyte.
pub const GIB: usize = 1024 * MIB;

/// Formats a byte count with a binary-prefix unit, e.g. `8KB`, `6MB`, `1GB`.
///
/// Matches the axis labels of the paper's figures (which use `8KB`, `32KB`,
/// ..., `512MB` for hash-table sizes).
pub fn fmt_bytes(n: usize) -> String {
    if n >= GIB && n.is_multiple_of(GIB) {
        format!("{}GB", n / GIB)
    } else if n >= MIB && n.is_multiple_of(MIB) {
        format!("{}MB", n / MIB)
    } else if n >= KIB && n.is_multiple_of(KIB) {
        format!("{}KB", n / KIB)
    } else {
        format!("{n}B")
    }
}

/// Formats a bandwidth in GBps (decimal, matching the paper's convention).
pub fn fmt_bw(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e12 {
        format!("{:.1}TBps", bytes_per_sec / 1e12)
    } else {
        format!("{:.0}GBps", bytes_per_sec / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_paper_axes() {
        assert_eq!(fmt_bytes(8 * KIB), "8KB");
        assert_eq!(fmt_bytes(512 * MIB), "512MB");
        assert_eq!(fmt_bytes(GIB), "1GB");
        assert_eq!(fmt_bytes(100), "100B");
    }

    #[test]
    fn formats_bandwidth() {
        assert_eq!(fmt_bw(880.0e9), "880GBps");
        assert_eq!(fmt_bw(2.2e12), "2.2TBps");
    }
}

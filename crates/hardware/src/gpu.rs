//! GPU hardware description (paper Table 2, right column).

use crate::cache::CacheLevel;

/// Characteristics of a discrete GPU relevant to in-memory analytics.
///
/// Mirrors Table 2 of the paper plus the execution-geometry limits (occupancy
/// inputs, Section 3.3) and two calibration constants documented at
/// [`crate::nvidia_v100`].
#[derive(Debug, Clone)]
pub struct GpuSpec {
    pub name: String,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (SIMT width).
    pub warp_size: usize,
    /// Occupancy limit: resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Occupancy limit: resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Shared memory (scratchpad) per SM, bytes.
    pub shared_mem_per_sm: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    pub clock_ghz: f64,
    /// Global (HBM) memory capacity, bytes.
    pub mem_capacity: usize,
    /// Global memory read bandwidth, bytes/sec.
    pub read_bw: f64,
    /// Global memory write bandwidth, bytes/sec.
    pub write_bw: f64,
    /// Device-wide L2 capacity, bytes.
    pub l2_size: usize,
    /// L2 bandwidth, bytes/sec.
    pub l2_bw: f64,
    /// Aggregate L1/shared-memory bandwidth, bytes/sec.
    pub l1_smem_bw: f64,
    /// Global-memory cache line, bytes (random-access granularity; the paper
    /// notes 128 B on GPU vs 64 B on CPU in Section 4.3).
    pub cache_line: usize,
    /// Memory sector size, bytes (finest coalescing granule).
    pub sector: usize,
    /// Effective bytes moved across the L2->SM path per random probe
    /// (calibration constant, see [`crate::nvidia_v100`]).
    pub l2_transfer_bytes: usize,
    /// Serialized cost of an atomic to one contended address, nanoseconds
    /// (calibration constant).
    pub atomic_same_addr_ns: f64,
    /// Fixed kernel-launch overhead, microseconds.
    pub kernel_launch_us: f64,
}

impl GpuSpec {
    /// Total cores across the device.
    pub fn total_cores(&self) -> usize {
        self.num_sms * self.cores_per_sm
    }

    /// Aggregate flops (1 op per core per clock).
    pub fn flops(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * 1e9
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }

    /// The L2 as a [`CacheLevel`] for the shared cache simulator.
    pub fn l2_level(&self) -> CacheLevel {
        CacheLevel {
            name: "L2",
            size: self.l2_size,
            bandwidth: self.l2_bw,
            line: self.cache_line,
            assoc: 16,
        }
    }

    /// Resident blocks per SM for a given block size and per-block shared
    /// memory usage — the occupancy calculation of Section 3.3 ("each
    /// streaming multiprocessor holds a maximum of 2048 threads, hence large
    /// thread blocks reduce the number of independent thread blocks").
    pub fn resident_blocks_per_sm(
        &self,
        block_threads: usize,
        shared_mem_per_block: usize,
    ) -> usize {
        if block_threads == 0 {
            return 0;
        }
        let by_threads = self.max_threads_per_sm / block_threads;
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(shared_mem_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads.min(by_smem).min(self.max_blocks_per_sm)
    }

    /// Fraction of maximum resident threads achieved (0..=1).
    pub fn occupancy(&self, block_threads: usize, shared_mem_per_block: usize) -> f64 {
        let blocks = self.resident_blocks_per_sm(block_threads, shared_mem_per_block);
        (blocks * block_threads) as f64 / self.max_threads_per_sm as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::nvidia_v100;

    #[test]
    fn v100_core_count_matches_paper() {
        // The paper rounds to "5000 cores".
        let g = nvidia_v100();
        assert_eq!(g.total_cores(), 5120);
    }

    #[test]
    fn occupancy_block_128() {
        let g = nvidia_v100();
        // 128-thread blocks, no smem limit: capped by max_blocks (32) =>
        // 32*128 = 4096 > 2048, so capped by threads: 16 blocks.
        assert_eq!(g.resident_blocks_per_sm(128, 0), 16);
        assert!((g.occupancy(128, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_small_blocks_capped_by_block_limit() {
        let g = nvidia_v100();
        // 32-thread blocks: 2048/32 = 64 by threads, but max 32 blocks.
        assert_eq!(g.resident_blocks_per_sm(32, 0), 32);
        assert!((g.occupancy(32, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let g = nvidia_v100();
        // 48KB smem per block: only 2 fit in 96KB.
        assert_eq!(g.resident_blocks_per_sm(128, 48 * 1024), 2);
    }

    #[test]
    fn warps_per_sm() {
        assert_eq!(nvidia_v100().max_warps_per_sm(), 64);
    }
}

//! Property tests for the GPU simulator's cache, allocator and timing
//! model.

use proptest::collection::vec;
use proptest::prelude::*;

use crystal_gpu_sim::cache::Cache;
use crystal_gpu_sim::exec::{Gpu, LaunchConfig};
use crystal_gpu_sim::stats::KernelStats;
use crystal_gpu_sim::timing::{kernel_time, LaunchShape};
use crystal_hardware::{nvidia_v100, CacheLevel};

fn small_cache(assoc: usize) -> Cache {
    Cache::new(&CacheLevel {
        name: "t",
        size: 4096,
        bandwidth: 1.0,
        line: 64,
        assoc,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hits + misses always equals accesses, and a cold cache's first
    /// touch of each line is always a miss.
    #[test]
    fn cache_accounting_is_conserved(addrs in vec(0u64..100_000, 1..300), assoc in 1usize..8) {
        let mut c = small_cache(assoc);
        let mut seen = std::collections::HashSet::new();
        for &a in &addrs {
            seen.insert(a / 64);
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        // Every distinct line's first touch is a cold miss.
        prop_assert!(c.misses() >= seen.len() as u64);
    }

    /// Immediately re-touching the same address is always a hit.
    #[test]
    fn repeat_access_hits(addrs in vec(0u64..10_000, 1..100)) {
        let mut c = small_cache(4);
        for &a in &addrs {
            c.access(a);
            prop_assert_eq!(c.access(a), crystal_gpu_sim::cache::Access::Hit);
        }
    }

    /// Device allocations never overlap, regardless of sizes.
    #[test]
    fn allocations_are_disjoint(sizes in vec(1usize..10_000, 1..40)) {
        let mut gpu = Gpu::new(nvidia_v100());
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &s in &sizes {
            let buf = gpu.alloc_zeroed::<u8>(s);
            let start = buf.addr();
            let end = start + buf.size_bytes() as u64;
            for &(a, b) in &ranges {
                prop_assert!(end <= a || start >= b, "overlap: [{start},{end}) vs [{a},{b})");
            }
            ranges.push((start, end));
        }
    }

    /// Kernel time is monotone in traffic: more bytes never makes a kernel
    /// faster.
    #[test]
    fn timing_is_monotone_in_traffic(
        base in 0u64..1_000_000_000,
        extra in 0u64..1_000_000_000,
        atomics in 0u64..1_000_000,
    ) {
        let spec = nvidia_v100();
        let shape = LaunchShape {
            block_dim: 128,
            items_per_thread: 4,
            shared_mem_per_block: 4096,
            uses_barriers: true,
        };
        let s1 = KernelStats { global_read_bytes: base, same_addr_atomics: atomics, ..Default::default() };
        let s2 = KernelStats { global_read_bytes: base + extra, same_addr_atomics: atomics, ..Default::default() };
        let t1 = kernel_time(&spec, &shape, &s1).total_secs();
        let t2 = kernel_time(&spec, &shape, &s2).total_secs();
        prop_assert!(t2 >= t1);
    }

    /// Every block of a launch is invoked exactly once, in order.
    #[test]
    fn launch_covers_grid(n in 1usize..100_000, bs_pow in 5u32..10, ipt in 1usize..5) {
        let mut gpu = Gpu::new(nvidia_v100());
        let bs = 1usize << bs_pow;
        let cfg = LaunchConfig::for_items(n, bs, ipt);
        let mut blocks = Vec::new();
        let mut covered = 0usize;
        gpu.launch("t", cfg, |ctx| {
            blocks.push(ctx.block_idx);
            let (_, len) = ctx.tile_bounds(n);
            covered += len;
        });
        prop_assert_eq!(blocks.len(), cfg.grid_dim);
        prop_assert!(blocks.windows(2).all(|w| w[1] == w[0] + 1));
        prop_assert_eq!(covered, n, "tiles must cover all items exactly once");
    }

    /// Occupancy never exceeds 1 and resident blocks respect all limits.
    #[test]
    fn occupancy_bounds(bs_pow in 5u32..11, smem in 0usize..200_000) {
        let spec = nvidia_v100();
        let bs = 1usize << bs_pow;
        let occ = spec.occupancy(bs, smem);
        prop_assert!((0.0..=1.0).contains(&occ));
        let blocks = spec.resident_blocks_per_sm(bs, smem);
        prop_assert!(blocks <= spec.max_blocks_per_sm);
        prop_assert!(blocks * bs <= spec.max_threads_per_sm);
    }
}

#[test]
fn free_returns_memory_budget() {
    let mut gpu = Gpu::new(nvidia_v100());
    let a = gpu.alloc_zeroed::<u64>(1000);
    let b = gpu.alloc_zeroed::<u64>(2000);
    assert_eq!(gpu.mem_used(), 24_000);
    gpu.free(a);
    gpu.free(b);
    assert_eq!(gpu.mem_used(), 0);
    assert_eq!(gpu.mem_high_water(), 24_000);
}

#[test]
fn oom_is_reported_not_panicked() {
    let mut gpu = Gpu::new(nvidia_v100());
    let cap = gpu.spec().mem_capacity;
    let err = gpu.try_alloc_zeroed::<u8>(cap + 1).unwrap_err();
    assert!(err.requested > err.available);
}

/// The simulator is fully deterministic: the same kernel sequence yields
/// bit-identical statistics and simulated times across runs.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut gpu = Gpu::new(nvidia_v100());
        let buf = gpu.alloc_zeroed::<i64>(1 << 14);
        let cfg = LaunchConfig::for_items(1 << 14, 128, 4);
        let mut acc = 0u64;
        gpu.launch("mix", cfg, |ctx| {
            let (start, len) = ctx.tile_bounds(1 << 14);
            ctx.global_read_coalesced(len * 8);
            for i in start..start + len {
                // Pseudo-random gathers drive the cache simulator.
                let j = (i.wrapping_mul(2654435761)) % (1 << 14);
                ctx.gather(buf.addr_of(j), 8);
                acc = acc.wrapping_add(j as u64);
            }
            ctx.atomic_same_addr(1);
        });
        let r = gpu.take_reports().pop().unwrap();
        (r.stats, format!("{:?}", r.time), acc)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

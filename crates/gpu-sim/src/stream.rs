//! Simulated copy/compute streams: two ordered queues with event-based
//! dependencies, mirroring how a CUDA copy engine overlaps PCIe DMA with
//! kernel execution.
//!
//! The real device has (at least) one DMA engine and one compute engine,
//! each draining its own in-order stream; `cudaEventRecord` /
//! `cudaStreamWaitEvent` express cross-stream dependencies. The simulator
//! reproduces exactly that structure with two monotone clocks:
//!
//! * the **DMA clock** advances by the *bandwidth* term of every enqueued
//!   copy — queued transfers stream back-to-back at line rate, so the
//!   per-transfer setup latency does not stack in the queue; it surfaces
//!   only in the copy's `first_chunk` event (the earliest moment a
//!   dependent kernel may start consuming the data);
//! * the **compute clock** advances by each launched kernel's simulated
//!   seconds, optionally gated on a copy event (`gate`: the kernel cannot
//!   start before its first input chunk lands) and floored by one
//!   (`floor`: the kernel cannot *finish* before the transfer it is
//!   racing has fully drained — compute cannot outrun the link).
//!
//! The engine is pure accounting: functional execution still happens
//! eagerly and in program order in [`Gpu::launch`](crate::exec::Gpu::launch),
//! so results are byte-identical to serial execution by construction — the
//! streams only decide what the overlap *costs*, never what it computes.

/// Events published by one enqueued copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyEvents {
    /// DMA-clock time at which the first chunk of the copy has landed and a
    /// consumer kernel may start (per-transfer latency + one chunk).
    pub first_chunk: f64,
    /// DMA-clock time at which the whole copy has drained.
    pub done: f64,
}

impl CopyEvents {
    /// Merges another copy's events into this one: a consumer that needs
    /// *both* transfers may start once the later `first_chunk` fires and
    /// is drained once the later `done` fires.
    pub fn merge(&mut self, other: CopyEvents) {
        self.first_chunk = self.first_chunk.max(other.first_chunk);
        self.done = self.done.max(other.done);
    }
}

/// One kernel's occupancy of the compute stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpan {
    /// Compute-clock time the kernel started (after its gate, if any).
    pub start: f64,
    /// Compute-clock time the kernel retired (after its floor, if any).
    pub end: f64,
}

impl StreamSpan {
    /// Seconds the span covers.
    pub fn secs(&self) -> f64 {
        self.end - self.start
    }
}

/// The two-stream engine: an in-order DMA queue and an in-order compute
/// queue sharing one simulated timeline.
#[derive(Debug, Clone, Default)]
pub struct StreamEngine {
    dma_clock: f64,
    compute_clock: f64,
}

impl StreamEngine {
    /// A fresh engine with both streams idle at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one host-to-device copy on the DMA stream.
    ///
    /// `ramp_secs` is the time until the copy's first chunk has landed
    /// (per-transfer latency + one chunk); `bw_secs` is the pure
    /// bandwidth term (`bytes / link_bandwidth`). The queue charges only
    /// `bw_secs` — back-to-back copies stream at line rate — while the
    /// returned [`CopyEvents::first_chunk`] carries the ramp, so a lone
    /// transfer still makes its consumer wait the full setup latency.
    pub fn enqueue_copy(&mut self, ramp_secs: f64, bw_secs: f64) -> CopyEvents {
        let start = self.dma_clock;
        self.dma_clock += bw_secs;
        CopyEvents {
            first_chunk: start + ramp_secs,
            done: self.dma_clock,
        }
    }

    /// Launches one kernel of `secs` simulated seconds on the compute
    /// stream. `gate` (if set) is the earliest start time — typically a
    /// copy's `first_chunk` event; `floor` (if set) is the earliest
    /// *finish* time — typically the copy's `done` event, modeling a
    /// kernel whose tile schedule ramps under the tail of the transfer
    /// but can never consume bytes faster than the link delivers them.
    pub fn launch(&mut self, secs: f64, gate: Option<f64>, floor: Option<f64>) -> StreamSpan {
        let mut start = self.compute_clock;
        if let Some(g) = gate {
            start = start.max(g);
        }
        let mut end = start + secs;
        if let Some(f) = floor {
            end = end.max(f);
        }
        self.compute_clock = end;
        StreamSpan { start, end }
    }

    /// Current DMA-stream clock (seconds of enqueued bandwidth time).
    pub fn dma_clock(&self) -> f64 {
        self.dma_clock
    }

    /// Current compute-stream clock.
    pub fn compute_clock(&self) -> f64 {
        self.compute_clock
    }

    /// Overall makespan: the later of the two stream clocks — the
    /// wall-clock at which both engines have drained.
    pub fn makespan(&self) -> f64 {
        self.dma_clock.max(self.compute_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-15, "{a} vs {b}");
    }

    #[test]
    fn copies_queue_back_to_back_at_line_rate() {
        let mut s = StreamEngine::new();
        let a = s.enqueue_copy(11e-6, 100e-6);
        let b = s.enqueue_copy(11e-6, 50e-6);
        // Bandwidth terms stack; ramps do not.
        close(s.dma_clock(), 150e-6);
        close(a.first_chunk, 11e-6);
        close(a.done, 100e-6);
        // The second copy starts where the first ended.
        close(b.first_chunk, 100e-6 + 11e-6);
        close(b.done, 150e-6);
    }

    #[test]
    fn gated_kernel_waits_for_the_first_chunk() {
        let mut s = StreamEngine::new();
        let ev = s.enqueue_copy(11e-6, 100e-6);
        let span = s.launch(5e-6, Some(ev.first_chunk), Some(ev.done));
        // Starts at the first chunk, but cannot retire before the copy
        // drains: the kernel hides entirely under the transfer.
        assert_eq!(span.start, 11e-6);
        assert_eq!(span.end, 100e-6);
        assert_eq!(s.makespan(), 100e-6);
    }

    #[test]
    fn compute_bound_kernel_hides_the_transfer_tail() {
        let mut s = StreamEngine::new();
        let ev = s.enqueue_copy(11e-6, 20e-6);
        let span = s.launch(100e-6, Some(ev.first_chunk), Some(ev.done));
        // Kernel dominates: total = ramp + kernel.
        assert_eq!(span.start, 11e-6);
        assert_eq!(span.end, 111e-6);
        assert_eq!(s.makespan(), 111e-6);
    }

    #[test]
    fn ungated_kernels_run_back_to_back() {
        let mut s = StreamEngine::new();
        let a = s.launch(10e-6, None, None);
        let b = s.launch(5e-6, None, None);
        assert_eq!(a.start, 0.0);
        close(a.end, 10e-6);
        close(b.start, 10e-6);
        close(b.end, 15e-6);
        close(s.makespan(), 15e-6);
    }

    #[test]
    fn prefetch_overlaps_the_running_kernel() {
        // Shard pipeline shape: kernel k runs while shard k+1's copy
        // drains on the other stream; the next kernel gates on the copy.
        let mut s = StreamEngine::new();
        let ev0 = s.enqueue_copy(11e-6, 30e-6);
        let k0 = s.launch(40e-6, Some(ev0.first_chunk), Some(ev0.done));
        let ev1 = s.enqueue_copy(11e-6, 30e-6); // starts at 30us on DMA
        close(ev1.done, 60e-6);
        let k1 = s.launch(40e-6, Some(ev1.first_chunk), Some(ev1.done));
        // k0: gated at 11us, runs 40us -> 51us. k1 gates on ev1 first
        // chunk (41us) but the compute stream is busy until 51us.
        close(k0.end, 51e-6);
        close(k1.start, 51e-6);
        close(k1.end, 91e-6);
        // Serial charging would pay (11+30+40)*2 = 162us; overlap hides
        // the second copy entirely.
        assert!(s.makespan() < 100e-6);
    }

    #[test]
    fn events_merge_to_the_latest() {
        let mut a = CopyEvents {
            first_chunk: 1.0,
            done: 3.0,
        };
        a.merge(CopyEvents {
            first_chunk: 2.0,
            done: 2.5,
        });
        assert_eq!(a.first_chunk, 2.0);
        assert_eq!(a.done, 3.0);
    }

    #[test]
    fn span_secs_is_the_occupancy() {
        let mut s = StreamEngine::new();
        let ev = s.enqueue_copy(5e-6, 50e-6);
        let span = s.launch(10e-6, Some(ev.first_chunk), Some(ev.done));
        assert!((span.secs() - 45e-6).abs() < 1e-18);
    }
}

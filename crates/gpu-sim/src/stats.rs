//! Kernel execution statistics: the trace the timing model consumes.

use crate::stream::StreamSpan;
use crate::timing::SimTime;

/// Raw resource counts accumulated while a kernel executes.
///
/// The counters follow the structure of the paper's models: global-memory
/// bytes (split read/write, and split sequential/random so coalescing
/// efficiency can be reasoned about), L2 traffic from cache-simulated
/// gathers, shared-memory traffic, atomics (contended same-address vs
/// scattered), barriers and compute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Coalesced (streaming) bytes read from global memory.
    pub global_read_bytes: u64,
    /// Coalesced (streaming) bytes written to global memory.
    pub global_write_bytes: u64,
    /// Bytes read from global memory by gathers that missed L2
    /// (full cache lines).
    pub gather_miss_bytes: u64,
    /// Bytes written to global memory by scatters that missed L2.
    pub scatter_miss_bytes: u64,
    /// Bytes served from (or absorbed by) the L2 for gathers/scatters,
    /// including the lines that missed (they pass through L2 too).
    pub l2_bytes: u64,
    /// Gather/scatter requests issued (one per element accessed).
    pub random_requests: u64,
    /// Shared-memory bytes read or written.
    pub shared_bytes: u64,
    /// Atomic operations targeting one contended address
    /// (e.g. a global output cursor).
    pub same_addr_atomics: u64,
    /// Atomic operations scattered over a structure (e.g. hash-table slots,
    /// group-by cells). These also generate `l2_bytes`/miss traffic via the
    /// cache simulator.
    pub scattered_atomics: u64,
    /// `__syncthreads()` executions (one per block per barrier).
    pub barriers: u64,
    /// Generic ALU operations (adds, compares, hashes).
    pub compute_ops: u64,
    /// Special-function-unit operations (exp, for the sigmoid projection).
    pub sfu_ops: u64,
    /// Thread blocks executed.
    pub blocks: u64,
}

impl KernelStats {
    /// Total bytes that crossed the global-memory (HBM) interface.
    pub fn hbm_read_bytes(&self) -> u64 {
        self.global_read_bytes + self.gather_miss_bytes
    }

    /// Total bytes written through the HBM interface.
    pub fn hbm_write_bytes(&self) -> u64 {
        self.global_write_bytes + self.scatter_miss_bytes
    }

    /// Total HBM traffic.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_read_bytes() + self.hbm_write_bytes()
    }

    /// Merges another kernel's counters into this one (used to aggregate
    /// multi-kernel operators such as radix sort).
    pub fn merge(&mut self, other: &KernelStats) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.gather_miss_bytes += other.gather_miss_bytes;
        self.scatter_miss_bytes += other.scatter_miss_bytes;
        self.l2_bytes += other.l2_bytes;
        self.random_requests += other.random_requests;
        self.shared_bytes += other.shared_bytes;
        self.same_addr_atomics += other.same_addr_atomics;
        self.scattered_atomics += other.scattered_atomics;
        self.barriers += other.barriers;
        self.compute_ops += other.compute_ops;
        self.sfu_ops += other.sfu_ops;
        self.blocks += other.blocks;
    }
}

/// Cumulative device-level execution counters, sampled before and after a
/// query to attribute launches and HBM traffic to it.
///
/// [`Gpu::launch`](crate::exec::Gpu::launch) bumps the device's counters on
/// every kernel; callers snapshot [`Gpu::exec_stats`](crate::exec::Gpu::exec_stats)
/// around a region and diff with [`ExecStats::since`]. This is how the fused
/// path proves "one launch per query" and how the fusion harness splits HBM
/// reads/writes into before/after deltas without threading reports around.
///
/// Transfer and compute time are accounted *separately* per stream:
/// `dma_secs` is the serialized busy time of the copy engine (each transfer
/// charged its full latency + bandwidth cost, as a serial implementation
/// would pay it) and `kernel_secs` is the serialized busy time of the
/// compute engine. The overlapped makespan — how much wall-clock the two
/// streams actually cost together — lives on the
/// [`StreamEngine`](crate::stream::StreamEngine) clocks; comparing it
/// against `dma_secs + kernel_secs` is how the overlap experiment measures
/// hidden transfer time instead of inferring it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Kernel launches executed (compute-stream launch count).
    pub launches: u64,
    /// Host-to-device transfers recorded (DMA-stream launch count).
    pub dma_transfers: u64,
    /// Bytes read across the HBM interface (streaming + gather misses).
    pub hbm_read_bytes: u64,
    /// Bytes written across the HBM interface (streaming + scatter misses).
    pub hbm_write_bytes: u64,
    /// Serialized copy-engine busy seconds: every recorded transfer's full
    /// cost (per-transfer latency + bytes/bandwidth), summed as if no
    /// transfer overlapped any kernel. The serial baseline.
    pub dma_secs: f64,
    /// Serialized compute-engine busy seconds: every launched kernel's
    /// simulated time, summed.
    pub kernel_secs: f64,
}

impl ExecStats {
    /// The delta accumulated since an earlier snapshot `before`.
    pub fn since(&self, before: &ExecStats) -> ExecStats {
        ExecStats {
            launches: self.launches - before.launches,
            dma_transfers: self.dma_transfers - before.dma_transfers,
            hbm_read_bytes: self.hbm_read_bytes - before.hbm_read_bytes,
            hbm_write_bytes: self.hbm_write_bytes - before.hbm_write_bytes,
            dma_secs: self.dma_secs - before.dma_secs,
            kernel_secs: self.kernel_secs - before.kernel_secs,
        }
    }
}

/// A completed kernel launch: its name, launch geometry, raw counters and
/// simulated time.
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub name: String,
    pub grid_dim: usize,
    pub block_dim: usize,
    pub items_per_thread: usize,
    /// Kernel launches this report covers: 1 for a report straight out of
    /// [`Gpu::launch`](crate::exec::Gpu::launch); more when reports are
    /// merged across a multi-kernel operator.
    pub launches: u64,
    pub stats: KernelStats,
    pub time: SimTime,
    /// Occupancy of the simulated compute stream: when the kernel started
    /// (after any copy-event gate) and when it retired (after any
    /// transfer-drain floor). Serial callers that never touch the copy
    /// engine see `end - start == time.total_secs()`.
    pub stream: StreamSpan,
    /// Whether the kernel's work grows linearly with the fact-table row
    /// count. Engines tag their fact scans/probes explicitly so scaled-time
    /// extrapolation (`sim_secs_scaled`) never has to guess from the kernel
    /// name; dimension-sized kernels (hash-table builds) stay `false`.
    pub fact_linear: bool,
}

impl KernelReport {
    /// Marks the kernel as fact-linear (see [`KernelReport::fact_linear`]).
    pub fn tag_fact_linear(mut self) -> Self {
        self.fact_linear = true;
        self
    }
}

impl std::fmt::Display for KernelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} <<<{}, {}>>> x{}  {:>9.3} ms  (hbm {:.2} GB, l2 {:.2} GB, atomics {}/{})",
            self.name,
            self.grid_dim,
            self.block_dim,
            self.items_per_thread,
            self.time.total_secs() * 1e3,
            self.stats.hbm_bytes() as f64 / 1e9,
            self.stats.l2_bytes as f64 / 1e9,
            self.stats.same_addr_atomics,
            self.stats.scattered_atomics,
        )
    }
}

/// Sum of a sequence of kernel reports: total simulated seconds.
pub fn total_time(reports: &[KernelReport]) -> f64 {
    reports.iter().map(|r| r.time.total_secs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_totals_combine_streaming_and_misses() {
        let s = KernelStats {
            global_read_bytes: 100,
            gather_miss_bytes: 28,
            global_write_bytes: 50,
            scatter_miss_bytes: 2,
            ..Default::default()
        };
        assert_eq!(s.hbm_read_bytes(), 128);
        assert_eq!(s.hbm_write_bytes(), 52);
        assert_eq!(s.hbm_bytes(), 180);
    }

    #[test]
    fn exec_stats_since_diffs_every_counter() {
        let before = ExecStats {
            launches: 2,
            dma_transfers: 1,
            hbm_read_bytes: 1000,
            hbm_write_bytes: 100,
            dma_secs: 2e-5,
            kernel_secs: 1e-5,
        };
        let after = ExecStats {
            launches: 3,
            dma_transfers: 4,
            hbm_read_bytes: 1600,
            hbm_write_bytes: 140,
            dma_secs: 8e-5,
            kernel_secs: 5e-5,
        };
        let d = after.since(&before);
        assert_eq!(d.launches, 1);
        assert_eq!(d.dma_transfers, 3);
        assert_eq!(d.hbm_read_bytes, 600);
        assert_eq!(d.hbm_write_bytes, 40);
        assert!((d.dma_secs - 6e-5).abs() < 1e-18);
        assert!((d.kernel_secs - 4e-5).abs() < 1e-18);
    }

    #[test]
    fn exec_stats_split_streams_start_at_zero() {
        let z = ExecStats::default();
        assert_eq!(z.dma_transfers, 0);
        assert_eq!(z.dma_secs, 0.0);
        assert_eq!(z.kernel_secs, 0.0);
        // A self-diff is the zero delta.
        assert_eq!(z.since(&z), ExecStats::default());
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = KernelStats {
            global_read_bytes: 1,
            barriers: 2,
            blocks: 3,
            ..Default::default()
        };
        let b = KernelStats {
            global_read_bytes: 10,
            barriers: 20,
            blocks: 30,
            sfu_ops: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 11);
        assert_eq!(a.barriers, 22);
        assert_eq!(a.blocks, 33);
        assert_eq!(a.sfu_ops, 5);
    }
}

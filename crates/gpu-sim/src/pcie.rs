//! PCIe transfer and coprocessor execution models (Section 3.1).
//!
//! In the coprocessor model, data lives in host memory and is shipped to the
//! GPU per query. The paper's bound: with perfect overlap of transfer and
//! execution, query time is `max(transfer, exec)`, and since PCIe bandwidth
//! is below the CPU's own memory bandwidth, the coprocessor can never beat a
//! bandwidth-saturating CPU implementation. The `pipelined` estimate sits
//! between the two ideals: a chunked upload lets the consumer kernel start
//! after the first chunk lands (the ramp), then race the remaining transfer
//! — what the simulated copy engine actually realizes.

use crystal_hardware::{upload_chunks, PcieSpec};

/// Outcome of a coprocessor-model query execution.
#[derive(Debug, Clone, Copy)]
pub struct CoprocessorTime {
    /// Seconds spent shipping input columns host->device.
    pub transfer: f64,
    /// Seconds of device execution.
    pub exec: f64,
    /// Total with perfect transfer/execution overlap (the paper's lower
    /// bound: `max(transfer, exec)`).
    pub overlapped: f64,
    /// Total with chunked-upload pipelining
    /// ([`PcieSpec::pipelined_secs`] at the engine's
    /// [`UPLOAD_CHUNK_BYTES`](crystal_hardware::pcie::UPLOAD_CHUNK_BYTES)
    /// granularity): ramp + `max` of the steady-state rates. Always
    /// between `overlapped` and `serial`.
    pub pipelined: f64,
    /// Total with no overlap (`transfer + exec`) — an upper bound.
    pub serial: f64,
}

/// Models running a query in the coprocessor model: `bytes` of input must
/// cross PCIe, and the GPU itself needs `exec_secs`. A zero-byte transfer
/// (a fully device-resident working set) issues no DMA at all, so it pays
/// no setup latency either.
pub fn coprocessor_time(pcie: &PcieSpec, bytes: usize, exec_secs: f64) -> CoprocessorTime {
    let transfer = if bytes == 0 {
        0.0
    } else {
        pcie.transfer_secs(bytes)
    };
    CoprocessorTime {
        transfer,
        exec: exec_secs,
        overlapped: transfer.max(exec_secs),
        pipelined: pcie.pipelined_secs(bytes, upload_chunks(bytes), exec_secs),
        serial: transfer + exec_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystal_hardware::pcie_gen3;

    #[test]
    fn transfer_bound_when_pcie_is_bottleneck() {
        // 1 GB over 12.8 GBps ~ 78 ms; exec of 5 ms is fully hidden.
        let t = coprocessor_time(&pcie_gen3(), 1 << 30, 0.005);
        assert!((t.overlapped - t.transfer).abs() < 1e-12);
        assert!(t.overlapped > 0.07);
        assert!(t.serial > t.overlapped);
    }

    #[test]
    fn exec_bound_when_kernel_dominates() {
        let t = coprocessor_time(&pcie_gen3(), 1 << 20, 0.5);
        assert!((t.overlapped - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pipelined_sits_between_the_ideal_and_serial_bounds() {
        for (bytes, exec) in [(1usize << 30, 0.005), (1 << 20, 0.5), (0, 0.1)] {
            let t = coprocessor_time(&pcie_gen3(), bytes, exec);
            assert!(
                t.overlapped <= t.pipelined + 1e-15,
                "pipelined {} below ideal {}",
                t.pipelined,
                t.overlapped
            );
            assert!(
                t.pipelined <= t.serial + 1e-15,
                "pipelined {} above serial {}",
                t.pipelined,
                t.serial
            );
        }
        // Zero bytes: all four collapse onto the kernel time.
        let t = coprocessor_time(&pcie_gen3(), 0, 0.1);
        assert_eq!(t.pipelined, 0.1);
        assert_eq!(t.serial, 0.1);
    }
}

//! Kernel launch machinery: the [`Gpu`] device handle and the per-block
//! execution context ([`BlockCtx`]) through which kernels perform accounted
//! memory operations.
//!
//! A kernel is a Rust closure invoked once per thread block. This matches
//! the tile-based execution model of the paper (Section 3.2): the thread
//! block is the basic execution unit and processes one tile of items per
//! invocation; the intra-block thread structure is captured by the
//! block-wide functions of `crystal-core`, which perform the per-thread
//! accounting.

use crystal_hardware::GpuSpec;

use crate::cache::Cache;
use crate::mem::{DeviceBuffer, Memory, OutOfDeviceMemory};
use crate::stats::{ExecStats, KernelReport, KernelStats};
use crate::stream::{CopyEvents, StreamEngine};
use crate::timing::{kernel_time, LaunchShape};

/// Kernel launch geometry, mirroring CUDA's `<<<grid, block>>>` plus the
/// Crystal items-per-thread tiling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Items each thread processes per tile (Crystal's `IPT`).
    pub items_per_thread: usize,
    /// Shared memory bytes statically used per block (occupancy input).
    pub shared_mem_bytes: usize,
}

impl LaunchConfig {
    /// The paper's preferred configuration: 128 threads/block, 4 items per
    /// thread ("we found that using thread block size 128 with items per
    /// thread equal to 4 is indeed the best performing tile configuration").
    pub fn default_for_items(n: usize) -> Self {
        Self::for_items(n, 128, 4)
    }

    /// A grid covering `n` items with one tile per block.
    pub fn for_items(n: usize, block_dim: usize, items_per_thread: usize) -> Self {
        let tile = block_dim * items_per_thread;
        LaunchConfig {
            grid_dim: n.div_ceil(tile.max(1)),
            block_dim,
            items_per_thread,
            // Tile kernels typically stage one tile of 4-byte values plus a
            // reuse buffer; kernels with different needs override this.
            shared_mem_bytes: tile * 8,
        }
    }

    /// Items per tile (`block_dim * items_per_thread`).
    pub fn tile(&self) -> usize {
        self.block_dim * self.items_per_thread
    }

    /// Override the per-block shared-memory estimate.
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }
}

/// Per-block execution context: the device-side API kernels program against.
///
/// Every method that touches memory updates the kernel's [`KernelStats`];
/// random accesses additionally consult the device-wide L2 cache simulator.
pub struct BlockCtx<'a> {
    /// This block's index within the grid.
    pub block_idx: usize,
    /// Grid size.
    pub grid_dim: usize,
    /// Threads in this block.
    pub block_dim: usize,
    /// Items per thread.
    pub items_per_thread: usize,
    stats: &'a mut KernelStats,
    l2: &'a mut Cache,
    line: u64,
    sector: u64,
    l2_transfer: u64,
}

impl<'a> BlockCtx<'a> {
    /// Items per tile.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.block_dim * self.items_per_thread
    }

    /// Global-memory cache-line size of the device, bytes.
    #[inline]
    pub fn line_size(&self) -> usize {
        self.line as usize
    }

    /// The `[start, start+len)` range of items this block owns when a grid
    /// is launched with [`LaunchConfig::for_items`] over `n` items.
    #[inline]
    pub fn tile_bounds(&self, n: usize) -> (usize, usize) {
        let tile = self.tile_size();
        let start = self.block_idx * tile;
        let len = tile.min(n.saturating_sub(start));
        (start, len)
    }

    // ---- coalesced (streaming) global memory ----

    /// Accounts a coalesced read of `bytes` from global memory (BlockLoad of
    /// a full tile: consecutive threads read consecutive addresses, so the
    /// hardware coalescer merges them into full-line transactions).
    #[inline]
    pub fn global_read_coalesced(&mut self, bytes: usize) {
        self.stats.global_read_bytes += bytes as u64;
    }

    /// Accounts a coalesced write of `bytes` to global memory.
    #[inline]
    pub fn global_write_coalesced(&mut self, bytes: usize) {
        self.stats.global_write_bytes += bytes as u64;
    }

    // ---- random-access global memory (cache simulated) ----

    /// Accounts a gather of `bytes` at device address `addr` (a hash-table
    /// probe, a dimension lookup...). The access runs through the L2
    /// simulator; a hit moves [`GpuSpec::l2_transfer_bytes`] across the
    /// L2->SM path, while a miss charges a full cache line of HBM traffic —
    /// the paper's "every random access to memory ends up reading an entire
    /// cache line" (Section 4.3).
    #[inline]
    pub fn gather(&mut self, addr: u64, bytes: usize) {
        self.stats.random_requests += 1;
        let misses = self.l2.access_range(addr, bytes as u64);
        let lines = span_lines(addr, bytes as u64, self.line);
        self.stats.l2_bytes += lines * self.l2_transfer;
        self.stats.gather_miss_bytes += misses * self.line;
    }

    /// Accounts a scatter (random write) of `bytes` at `addr`.
    #[inline]
    pub fn scatter(&mut self, addr: u64, bytes: usize) {
        self.stats.random_requests += 1;
        let misses = self.l2.access_range(addr, bytes as u64);
        let lines = span_lines(addr, bytes as u64, self.line);
        self.stats.l2_bytes += lines * self.l2_transfer;
        self.stats.scatter_miss_bytes += misses * self.line;
    }

    // ---- shared memory ----

    /// Accounts `bytes` of shared-memory traffic (reads and writes are
    /// symmetric in the model).
    #[inline]
    pub fn shared(&mut self, bytes: usize) {
        self.stats.shared_bytes += bytes as u64;
    }

    // ---- atomics ----

    /// Accounts `n` atomic operations against a single contended address
    /// (e.g. the global output cursor). These serialize.
    #[inline]
    pub fn atomic_same_addr(&mut self, n: usize) {
        self.stats.same_addr_atomics += n as u64;
    }

    /// Accounts an atomic RMW at a scattered address (hash-table slot,
    /// aggregate cell). Resolved in L2 at sector granularity; a miss brings
    /// the line in from HBM.
    #[inline]
    pub fn atomic_scattered(&mut self, addr: u64) {
        self.stats.scattered_atomics += 1;
        let miss = self.l2.access_range(addr, 1);
        self.stats.l2_bytes += self.sector;
        self.stats.gather_miss_bytes += miss * self.line;
    }

    // ---- control & compute ----

    /// Accounts one block-wide barrier (`__syncthreads()`).
    #[inline]
    pub fn sync(&mut self) {
        self.stats.barriers += 1;
    }

    /// Accounts `ops` generic ALU operations.
    #[inline]
    pub fn compute(&mut self, ops: usize) {
        self.stats.compute_ops += ops as u64;
    }

    /// Accounts `ops` special-function-unit operations (exp, log, ...).
    #[inline]
    pub fn sfu(&mut self, ops: usize) {
        self.stats.sfu_ops += ops as u64;
    }
}

#[inline]
fn span_lines(addr: u64, bytes: u64, line: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    (addr + bytes - 1) / line - addr / line + 1
}

/// The simulated device: spec, global memory, device-wide L2, the log of
/// executed kernels, and the copy/compute stream pair that tracks how much
/// of the DMA traffic hides behind in-flight kernels.
pub struct Gpu {
    spec: GpuSpec,
    mem: Memory,
    l2: Cache,
    reports: Vec<KernelReport>,
    exec: ExecStats,
    streams: StreamEngine,
    /// One-shot copy-event gate consumed by the next [`Gpu::launch`]: the
    /// kernel may not start on the compute stream before this time.
    pending_gate: Option<f64>,
    /// One-shot drain floor consumed by the next [`Gpu::launch`]: the
    /// kernel may not retire before this time (it cannot consume bytes
    /// faster than the link delivers them).
    pending_floor: Option<f64>,
}

impl Gpu {
    pub fn new(spec: GpuSpec) -> Self {
        let l2 = Cache::new(&spec.l2_level());
        let mem = Memory::new(spec.mem_capacity);
        Gpu {
            spec,
            mem,
            l2,
            reports: Vec::new(),
            exec: ExecStats::default(),
            streams: StreamEngine::new(),
            pending_gate: None,
            pending_floor: None,
        }
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Allocates a device buffer initialized from `data`.
    ///
    /// # Panics
    /// Panics if the device is out of memory; use [`Gpu::try_alloc_from`]
    /// for a fallible version.
    pub fn alloc_from<T: Copy + Default>(&mut self, data: &[T]) -> DeviceBuffer<T> {
        self.try_alloc_from(data).expect("device allocation failed")
    }

    /// Fallible allocation from a host slice.
    pub fn try_alloc_from<T: Copy + Default>(
        &mut self,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        self.mem.alloc_from(data.to_vec())
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc_zeroed<T: Copy + Default>(&mut self, len: usize) -> DeviceBuffer<T> {
        self.mem
            .alloc_zeroed(len)
            .expect("device allocation failed")
    }

    /// Fallible zeroed allocation.
    pub fn try_alloc_zeroed<T: Copy + Default>(
        &mut self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        self.mem.alloc_zeroed(len)
    }

    /// Frees a buffer.
    pub fn free<T: Copy + Default>(&mut self, buf: DeviceBuffer<T>) {
        self.mem.free(buf);
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.mem.used()
    }

    /// Peak allocation over the device lifetime.
    pub fn mem_high_water(&self) -> usize {
        self.mem.high_water()
    }

    /// Launches a kernel: `f` is invoked once per thread block, in block
    /// order, with an accounting context. Returns the kernel's report (also
    /// appended to [`Gpu::reports`]).
    pub fn launch<F>(&mut self, name: &str, cfg: LaunchConfig, mut f: F) -> KernelReport
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        let mut stats = KernelStats {
            blocks: cfg.grid_dim as u64,
            ..Default::default()
        };
        let line = self.spec.cache_line as u64;
        let sector = self.spec.sector as u64;
        let l2_transfer = self.spec.l2_transfer_bytes as u64;
        for block_idx in 0..cfg.grid_dim {
            let mut ctx = BlockCtx {
                block_idx,
                grid_dim: cfg.grid_dim,
                block_dim: cfg.block_dim,
                items_per_thread: cfg.items_per_thread,
                stats: &mut stats,
                l2: &mut self.l2,
                line,
                sector,
                l2_transfer,
            };
            f(&mut ctx);
        }
        let shape = LaunchShape {
            block_dim: cfg.block_dim,
            items_per_thread: cfg.items_per_thread,
            shared_mem_per_block: cfg.shared_mem_bytes,
            uses_barriers: stats.barriers > 0,
        };
        let time = kernel_time(&self.spec, &shape, &stats);
        self.exec.launches += 1;
        self.exec.hbm_read_bytes += stats.hbm_read_bytes();
        self.exec.hbm_write_bytes += stats.hbm_write_bytes();
        self.exec.kernel_secs += time.total_secs();
        let gate = self.pending_gate.take();
        let floor = self.pending_floor.take();
        let span = self.streams.launch(time.total_secs(), gate, floor);
        let report = KernelReport {
            name: name.to_string(),
            grid_dim: cfg.grid_dim,
            block_dim: cfg.block_dim,
            items_per_thread: cfg.items_per_thread,
            launches: 1,
            stats,
            time,
            stream: span,
            fact_linear: false,
        };
        self.reports.push(report.clone());
        report
    }

    /// Records one host-to-device transfer on the simulated copy stream.
    ///
    /// `ramp_secs` is the chunked upload's ramp (latency + first chunk),
    /// `bw_secs` its pure bandwidth term, and `serial_secs` the full serial
    /// cost (latency + bandwidth) a non-overlapping implementation would
    /// pay. The DMA queue charges only `bw_secs` — queued copies stream
    /// back-to-back at line rate — while [`ExecStats::dma_secs`] accrues
    /// `serial_secs`, so the stats stay the honest serial baseline the
    /// overlap experiments compare the stream makespan against.
    pub fn record_dma(&mut self, ramp_secs: f64, bw_secs: f64, serial_secs: f64) -> CopyEvents {
        self.exec.dma_transfers += 1;
        self.exec.dma_secs += serial_secs;
        self.streams.enqueue_copy(ramp_secs, bw_secs)
    }

    /// Gates the *next* [`Gpu::launch`] on a copy event: the kernel will
    /// not start on the compute stream before `t` (one-shot; later
    /// launches are unaffected).
    pub fn stream_wait(&mut self, t: f64) {
        self.pending_gate = Some(self.pending_gate.map_or(t, |g: f64| g.max(t)));
    }

    /// Floors the *next* [`Gpu::launch`]'s retirement at `t` — typically a
    /// copy's drain event, so a kernel racing its own input transfer never
    /// finishes before the link does (one-shot).
    pub fn stream_floor(&mut self, t: f64) {
        self.pending_floor = Some(self.pending_floor.map_or(t, |f: f64| f.max(t)));
    }

    /// The copy/compute stream clocks (read-only).
    pub fn streams(&self) -> &StreamEngine {
        &self.streams
    }

    /// Cumulative device-level execution counters since construction.
    ///
    /// Snapshot before and after a query and diff with [`ExecStats::since`]
    /// to attribute launches and HBM traffic to that query.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec
    }

    /// All kernel reports since construction or the last
    /// [`Gpu::take_reports`].
    pub fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    /// Drains and returns the accumulated reports.
    pub fn take_reports(&mut self) -> Vec<KernelReport> {
        std::mem::take(&mut self.reports)
    }

    /// Total simulated seconds across all recorded reports.
    pub fn total_sim_secs(&self) -> f64 {
        self.reports.iter().map(|r| r.time.total_secs()).sum()
    }

    /// Clears the L2 (e.g. between unrelated experiments).
    pub fn reset_l2(&mut self) {
        self.l2.reset();
    }

    /// L2 hit ratio since the last reset (diagnostics).
    pub fn l2_hit_ratio(&self) -> f64 {
        self.l2.hit_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystal_hardware::nvidia_v100;

    #[test]
    fn launch_invokes_every_block_in_order() {
        let mut gpu = Gpu::new(nvidia_v100());
        let cfg = LaunchConfig::for_items(1000, 128, 4); // tile 512 -> 2 blocks
        assert_eq!(cfg.grid_dim, 2);
        let mut seen = Vec::new();
        gpu.launch("t", cfg, |ctx| seen.push(ctx.block_idx));
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn tile_bounds_handles_tail() {
        let mut gpu = Gpu::new(nvidia_v100());
        let cfg = LaunchConfig::for_items(1000, 128, 4);
        let mut bounds = Vec::new();
        gpu.launch("t", cfg, |ctx| bounds.push(ctx.tile_bounds(1000)));
        assert_eq!(bounds, vec![(0, 512), (512, 488)]);
    }

    #[test]
    fn coalesced_traffic_is_accounted() {
        let mut gpu = Gpu::new(nvidia_v100());
        let cfg = LaunchConfig::for_items(1 << 16, 128, 4);
        let r = gpu.launch("t", cfg, |ctx| {
            let (_, len) = ctx.tile_bounds(1 << 16);
            ctx.global_read_coalesced(len * 4);
            ctx.global_write_coalesced(len * 4);
        });
        assert_eq!(r.stats.global_read_bytes, 4 << 16);
        assert_eq!(r.stats.global_write_bytes, 4 << 16);
        assert!(r.time.total_secs() > 0.0);
    }

    #[test]
    fn gathers_hit_l2_after_warmup() {
        let mut gpu = Gpu::new(nvidia_v100());
        let buf = gpu.alloc_zeroed::<i64>(1024); // 8KB, far smaller than L2
        let cfg = LaunchConfig::for_items(1024, 128, 4);
        // Two passes over the same addresses: second pass must be all hits.
        let r1 = gpu.launch("warm", cfg, |ctx| {
            let (start, len) = ctx.tile_bounds(1024);
            for i in start..start + len {
                ctx.gather(buf.addr_of(i), 8);
            }
        });
        let r2 = gpu.launch("hot", cfg, |ctx| {
            let (start, len) = ctx.tile_bounds(1024);
            for i in start..start + len {
                ctx.gather(buf.addr_of(i), 8);
            }
        });
        assert!(r1.stats.gather_miss_bytes > 0);
        assert_eq!(r2.stats.gather_miss_bytes, 0);
        assert!(r2.stats.l2_bytes > 0);
    }

    #[test]
    fn l2_capacity_produces_misses_for_large_working_sets() {
        let mut gpu = Gpu::new(nvidia_v100());
        let n = 1 << 20; // 8MB of i64 > 6MB L2
        let buf = gpu.alloc_zeroed::<i64>(n);
        let cfg = LaunchConfig::for_items(n, 128, 4);
        gpu.launch("warm", cfg, |ctx| {
            let (start, len) = ctx.tile_bounds(n);
            for i in start..start + len {
                ctx.gather(buf.addr_of(i), 8);
            }
        });
        let r2 = gpu.launch("still-missing", cfg, |ctx| {
            let (start, len) = ctx.tile_bounds(n);
            for i in start..start + len {
                ctx.gather(buf.addr_of(i), 8);
            }
        });
        assert!(
            r2.stats.gather_miss_bytes > 0,
            "working set exceeding L2 must keep missing"
        );
    }

    #[test]
    fn reports_accumulate_and_drain() {
        let mut gpu = Gpu::new(nvidia_v100());
        let cfg = LaunchConfig::for_items(128, 128, 1);
        gpu.launch("a", cfg, |_| {});
        gpu.launch("b", cfg, |_| {});
        assert_eq!(gpu.reports().len(), 2);
        let taken = gpu.take_reports();
        assert_eq!(taken.len(), 2);
        assert!(gpu.reports().is_empty());
    }

    #[test]
    fn exec_stats_count_launches_and_hbm_traffic() {
        let mut gpu = Gpu::new(nvidia_v100());
        let cfg = LaunchConfig::for_items(512, 128, 4);
        let before = gpu.exec_stats();
        assert_eq!(before.launches, 0);
        gpu.launch("a", cfg, |ctx| {
            ctx.global_read_coalesced(1024);
            ctx.global_write_coalesced(256);
        });
        gpu.launch("b", cfg, |ctx| ctx.global_read_coalesced(512));
        let d = gpu.exec_stats().since(&before);
        assert_eq!(d.launches, 2);
        assert_eq!(d.hbm_read_bytes, 1536);
        assert_eq!(d.hbm_write_bytes, 256);
        // Each individual report covers exactly one launch.
        assert!(gpu.reports().iter().all(|r| r.launches == 1));
    }

    #[test]
    fn default_config_uses_paper_tile() {
        let cfg = LaunchConfig::default_for_items(1 << 20);
        assert_eq!(cfg.block_dim, 128);
        assert_eq!(cfg.items_per_thread, 4);
        assert_eq!(cfg.tile(), 512);
    }
}

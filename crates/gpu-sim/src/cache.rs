//! Set-associative LRU cache simulator.
//!
//! Used for the GPU L2 (the paper cites Mei & Chu's microbenchmark finding
//! that the V100 L2 is an LRU set-associative cache, Section 5.3) and reused
//! by the CPU empirical model for L2/L3 behaviour. The simulator tracks tags
//! only — data flows through the functional half of the simulator — so an
//! access costs a handful of nanoseconds of host time.

use crystal_hardware::CacheLevel;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Hit,
    Miss,
}

impl Access {
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

/// A tag-only set-associative cache with true-LRU replacement.
///
/// Addresses are simulated device addresses (see [`crate::mem`]); a line's
/// set is chosen by the bits directly above the line offset, as in real
/// hardware.
#[derive(Debug, Clone)]
pub struct Cache {
    line: u64,
    assoc: usize,
    num_sets: u64,
    /// `sets[s]` holds up to `assoc` tags in LRU order: index 0 is the most
    /// recently used entry.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from a [`CacheLevel`] description.
    pub fn new(level: &CacheLevel) -> Self {
        let num_sets = level.num_sets().max(1) as u64;
        Cache {
            line: level.line as u64,
            assoc: level.assoc,
            num_sets,
            sets: vec![Vec::with_capacity(level.assoc); num_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        (self.num_sets * self.line) as usize * self.assoc
    }

    /// Accesses the line containing `addr`, updating LRU state.
    pub fn access(&mut self, addr: u64) -> Access {
        let tag = addr / self.line;
        let set = &mut self.sets[(tag % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Accesses every line overlapped by `[addr, addr + bytes)`; returns the
    /// number of missing lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line;
        let last = (addr + bytes - 1) / self.line;
        let mut misses = 0;
        for line in first..=last {
            if self.access(line * self.line) == Access::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit ratio (1.0 when no accesses have been made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears hit/miss counters but keeps cache contents (used between
    /// kernels so that, e.g., a hash table built by one kernel is still
    /// resident when the probe kernel starts, as on real hardware).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 8 sets x 2-way x 64B lines = 1 KiB.
        Cache::new(&CacheLevel {
            name: "t",
            size: 1024,
            bandwidth: 1.0,
            line: 64,
            assoc: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.capacity(), 1024);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(32), Access::Hit); // same 64B line
        assert_eq!(c.access(64), Access::Miss);
        assert_eq!(c.access(0), Access::Hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line = 512).
        c.access(0);
        c.access(512);
        c.access(0); // refresh line 0 => line 512 is now LRU
        c.access(1024); // evicts 512
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(512), Access::Miss);
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = small();
        // Bytes [60, 160) touch lines 0, 64 and 128.
        assert_eq!(c.access_range(60, 100), 3);
        assert_eq!(c.access_range(60, 100), 0);
    }

    #[test]
    fn working_set_hit_ratio_approximates_capacity_fraction() {
        // Uniform random accesses over a working set 2x the cache converge
        // to ~50% hit rate under LRU.
        let level = CacheLevel {
            name: "t",
            size: 64 * 1024,
            bandwidth: 1.0,
            line: 64,
            assoc: 8,
        };
        let mut c = Cache::new(&level);
        let ws = 2 * level.size as u64;
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = x % ws;
            c.access(addr);
        }
        let r = c.hit_ratio();
        assert!((0.4..0.6).contains(&r), "hit ratio {r} should be ~0.5");
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = small();
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(0), Access::Hit);
    }
}

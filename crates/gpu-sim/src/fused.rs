//! Whole-query fusion: one kernel per star query.
//!
//! The paper's tile-based execution model (Section 3.2) exists precisely so
//! that a full select→probe×N→aggregate pipeline can run as a *single*
//! kernel: a thread block loads one tile of fact rows into shared memory /
//! registers, filters it, probes every dimension hash table, and folds the
//! survivors into per-block aggregates — the intermediate selection vector
//! never touches HBM. [`FusedStarKernel`] is the device-side half of that
//! contract: it owns the launch geometry and the shared-memory accounting,
//! while the query engine supplies the per-tile body as a closure (the
//! simulator cannot know about query plans; the dependency points the other
//! way).
//!
//! The per-tile footprint it charges is
//!
//! ```text
//! tile * 4 * (3 + joins) + tile
//! ```
//!
//! bytes: one 4-byte staging slot per item for the column being loaded, two
//! more for the aggregate inputs, one per join for the looked-up dimension
//! code, plus one byte per item for the survivor bitmap. When that footprint
//! would not fit the device's shared-memory budget, [`FusedStarKernel::plan`]
//! degrades the tile (items-per-thread first, then block width) instead of
//! panicking — occupancy accounting stays honest and the kernel still runs,
//! just with smaller tiles.

use crystal_hardware::GpuSpec;

use crate::exec::{BlockCtx, Gpu, LaunchConfig};
use crate::stats::KernelReport;

/// Descriptor for one fused star-query kernel: how many fact rows it covers
/// and how many dimension hash tables each tile probes.
#[derive(Debug, Clone)]
pub struct FusedStarKernel {
    name: String,
    items: usize,
    joins: usize,
}

impl FusedStarKernel {
    /// A fused kernel named `name` covering `items` fact rows with `joins`
    /// hash-table probes per surviving row.
    pub fn new(name: impl Into<String>, items: usize, joins: usize) -> Self {
        FusedStarKernel {
            name: name.into(),
            items,
            joins,
        }
    }

    /// The charged per-block shared-memory footprint for a `tile`-item tile
    /// probing `joins` dimension tables: `tile * 4 * (3 + joins) + tile`.
    pub fn shared_mem_bytes(tile: usize, joins: usize) -> usize {
        tile * 4 * (3 + joins) + tile
    }

    /// Plans the launch: the paper's preferred 128-thread × 4-items-per-thread
    /// tile when the charged footprint fits the device, degrading to a
    /// smaller tile (items-per-thread first, then block width, floored at
    /// one warp) when it would blow the shared-memory budget.
    pub fn plan(&self, spec: &GpuSpec) -> LaunchConfig {
        let budget = spec.shared_mem_per_sm;
        let mut block_dim = 128;
        let mut ipt = 4;
        while ipt > 1 && Self::shared_mem_bytes(block_dim * ipt, self.joins) > budget {
            ipt /= 2;
        }
        while block_dim > spec.warp_size
            && Self::shared_mem_bytes(block_dim * ipt, self.joins) > budget
        {
            block_dim /= 2;
        }
        let tile = block_dim * ipt;
        LaunchConfig::for_items(self.items, block_dim, ipt)
            .with_shared_mem(Self::shared_mem_bytes(tile, self.joins))
    }

    /// Launches the fused kernel once: plans the geometry against `gpu`'s
    /// spec and invokes `body` per thread block. The whole query is this one
    /// launch — the returned report's `launches` is 1 by construction.
    pub fn launch<F>(&self, gpu: &mut Gpu, mut body: F) -> KernelReport
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        let cfg = self.plan(gpu.spec());
        gpu.launch(&self.name, cfg, |ctx| body(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystal_hardware::nvidia_v100;

    #[test]
    fn footprint_formula_grows_as_specified() {
        for joins in 0..=4 {
            for tile in [128, 256, 512, 1024] {
                assert_eq!(
                    FusedStarKernel::shared_mem_bytes(tile, joins),
                    tile * 4 * (3 + joins) + tile,
                );
            }
            // Linear in the tile: doubling the tile doubles the footprint.
            assert_eq!(
                FusedStarKernel::shared_mem_bytes(1024, joins),
                2 * FusedStarKernel::shared_mem_bytes(512, joins),
            );
        }
        // Each extra join costs exactly one 4-byte slot per tile item.
        assert_eq!(
            FusedStarKernel::shared_mem_bytes(512, 3) - FusedStarKernel::shared_mem_bytes(512, 2),
            512 * 4,
        );
    }

    #[test]
    fn v100_keeps_the_paper_tile() {
        let spec = nvidia_v100();
        let k = FusedStarKernel::new("fused_q21", 1 << 20, 4);
        let cfg = k.plan(&spec);
        assert_eq!(cfg.block_dim, 128);
        assert_eq!(cfg.items_per_thread, 4);
        assert_eq!(cfg.tile(), 512);
        assert_eq!(
            cfg.shared_mem_bytes,
            FusedStarKernel::shared_mem_bytes(512, 4)
        );
        // The charged footprint must leave the block resident.
        assert!(spec.resident_blocks_per_sm(cfg.block_dim, cfg.shared_mem_bytes) >= 1);
    }

    #[test]
    fn over_budget_tile_degrades_instead_of_panicking() {
        let mut spec = nvidia_v100();
        // 512-item tile with 4 joins charges 14,848 bytes; leave room for
        // only a fraction of that.
        spec.shared_mem_per_sm = 4 * 1024;
        let k = FusedStarKernel::new("fused_tiny_smem", 1 << 16, 4);
        let cfg = k.plan(&spec);
        assert!(cfg.tile() < 512, "tile must shrink under a tight budget");
        assert!(cfg.shared_mem_bytes <= spec.shared_mem_per_sm);
        assert!(spec.resident_blocks_per_sm(cfg.block_dim, cfg.shared_mem_bytes) >= 1);
        // The grid still covers every item with the degraded tile.
        assert_eq!(cfg.grid_dim, (1usize << 16).div_ceil(cfg.tile()));
    }

    #[test]
    fn degradation_floors_at_one_warp() {
        let mut spec = nvidia_v100();
        spec.shared_mem_per_sm = 16; // absurd: nothing fits
        let k = FusedStarKernel::new("fused_floor", 4096, 4);
        let cfg = k.plan(&spec); // must not panic or loop forever
        assert_eq!(cfg.block_dim, spec.warp_size);
        assert_eq!(cfg.items_per_thread, 1);
    }

    #[test]
    fn launch_is_exactly_one_kernel() {
        let mut gpu = Gpu::new(nvidia_v100());
        let k = FusedStarKernel::new("fused_one", 1000, 2);
        let before = gpu.exec_stats();
        let r = k.launch(&mut gpu, |ctx| {
            let (_, len) = ctx.tile_bounds(1000);
            ctx.global_read_coalesced(len * 4);
        });
        assert_eq!(r.name, "fused_one");
        assert_eq!(r.launches, 1);
        assert_eq!(gpu.exec_stats().since(&before).launches, 1);
        assert_eq!(r.stats.global_read_bytes, 4000);
    }
}

//! Device global memory: typed buffers with simulated addresses.
//!
//! A [`DeviceBuffer`] owns host memory holding the buffer contents (the
//! functional half of the simulation) and carries a simulated device address
//! assigned by a bump allocator (the timing half: the L2 cache simulator and
//! the coalescing accounting need stable addresses). The allocator enforces
//! the device's memory capacity, so working sets that would not fit on a real
//! V100 fail here too.

use std::sync::atomic::{AtomicU64, Ordering};

/// Alignment of every allocation, matching the 256-byte alignment CUDA's
/// allocator guarantees (and ensuring a buffer never shares a cache line
/// with another buffer).
pub const ALLOC_ALIGN: u64 = 256;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// Error returned when an allocation exceeds the device's remaining memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// A typed allocation in simulated device global memory.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    addr: u64,
    id: u64,
    /// Bytes charged against the device budget at allocation time (stable
    /// across [`DeviceBuffer::truncate`]).
    alloc_bytes: usize,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    pub(crate) fn new(data: Vec<T>, addr: u64) -> Self {
        let alloc_bytes = data.len() * std::mem::size_of::<T>();
        DeviceBuffer {
            data,
            addr,
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            alloc_bytes,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Simulated device base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Simulated device address of element `idx` (used for cache-simulated
    /// gathers/scatters).
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(idx <= self.data.len());
        self.addr + (idx * std::mem::size_of::<T>()) as u64
    }

    /// Unique buffer id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Read-only view of the contents.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the contents back to a host `Vec` (the simulated
    /// `cudaMemcpy(DeviceToHost)`; PCIe time is accounted by
    /// [`crate::pcie`] when the caller models transfers).
    pub fn to_host(&self) -> Vec<T> {
        self.data.clone()
    }

    /// Shrinks the buffer to its first `len` elements (used by kernels that
    /// over-allocate their output, e.g. a selection sized for the worst
    /// case). The device-memory budget still accounts the original
    /// allocation until the buffer is freed.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }
}

/// Bump allocator over the simulated device address space.
#[derive(Debug)]
pub struct Memory {
    capacity: usize,
    used: usize,
    high_water: usize,
    next_addr: u64,
}

impl Memory {
    pub fn new(capacity: usize) -> Self {
        Memory {
            capacity,
            used: 0,
            high_water: 0,
            // Start away from address zero so that `addr == 0` never appears
            // (helps catch accounting bugs).
            next_addr: ALLOC_ALIGN,
        }
    }

    /// Allocates a buffer holding `data`.
    pub fn alloc_from<T: Copy + Default>(
        &mut self,
        data: Vec<T>,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        let bytes = data.len() * std::mem::size_of::<T>();
        if self.used + bytes > self.capacity {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        let addr = self.next_addr;
        let aligned = bytes.next_multiple_of(ALLOC_ALIGN as usize);
        self.next_addr += aligned as u64;
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(DeviceBuffer::new(data, addr))
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc_zeroed<T: Copy + Default>(
        &mut self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        self.alloc_from(vec![T::default(); len])
    }

    /// Releases a buffer's bytes back to the budget (addresses are not
    /// reused; the address space is 2^64, exhaustion is not a concern).
    pub fn free<T: Copy + Default>(&mut self, buf: DeviceBuffer<T>) {
        self.used -= buf.alloc_bytes;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Peak bytes allocated over the lifetime of the device.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_aligned_addresses() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_from(vec![0u32; 100]).unwrap();
        let b = m.alloc_from(vec![0u32; 100]).unwrap();
        assert_eq!(a.addr() % ALLOC_ALIGN, 0);
        assert_eq!(b.addr() % ALLOC_ALIGN, 0);
        assert!(b.addr() >= a.addr() + a.size_bytes() as u64);
    }

    #[test]
    fn addr_of_scales_by_element_size() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_from(vec![0u64; 16]).unwrap();
        assert_eq!(a.addr_of(2) - a.addr(), 16);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = Memory::new(1024);
        assert!(m.alloc_from(vec![0u8; 1025]).is_err());
        let a = m.alloc_from(vec![0u8; 1000]).unwrap();
        assert!(m.alloc_from(vec![0u8; 512]).is_err());
        m.free(a);
        assert!(m.alloc_from(vec![0u8; 512]).is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = Memory::new(1024);
        let a = m.alloc_from(vec![0u8; 600]).unwrap();
        m.free(a);
        let _b = m.alloc_from(vec![0u8; 100]).unwrap();
        assert_eq!(m.high_water(), 600);
        assert_eq!(m.used(), 100);
    }

    #[test]
    fn truncate_keeps_full_allocation_charged() {
        let mut m = Memory::new(1024);
        let mut a = m.alloc_from(vec![0u8; 600]).unwrap();
        a.truncate(10);
        assert_eq!(a.len(), 10);
        assert_eq!(m.used(), 600);
        m.free(a);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn to_host_roundtrips() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_from(vec![1i32, 2, 3]).unwrap();
        assert_eq!(a.to_host(), vec![1, 2, 3]);
    }
}

//! The timing model: converts [`KernelStats`] into simulated runtimes.
//!
//! The model follows the paper's methodology (Sections 3.3, 4 and 5.3):
//!
//! * A kernel's runtime is the **maximum** of its resource components —
//!   HBM traffic, L2 traffic, shared-memory traffic, ALU/SFU work and
//!   serialized atomics. GPUs overlap these almost perfectly because each SM
//!   keeps up to 64 warps in flight and swaps a warp out on every memory
//!   access ("this key feature allows GPUs to avoid the memory stalls
//!   associated with irregular accesses", Section 5.3).
//! * Achievable bandwidth is modulated by three multiplicative efficiency
//!   factors, each reproducing one regime of Figure 9:
//!   - **vector-load efficiency** (items per thread): a full 4-item tile
//!     loads with `int4` vector instructions; fewer items per thread waste
//!     load slots ("with 1 item per thread there is no benefit");
//!   - **occupancy efficiency**: small blocks cap resident threads (32
//!     blocks/SM max — at block size 32 only 50% occupancy is reachable);
//!   - **synchronization efficiency**: very large blocks make barriers
//!     expensive and reduce the number of independent blocks per SM
//!     ("having large thread blocks ... affects utilization particularly
//!     when thread blocks are using synchronization heavily").
//! * Atomics to a single contended address serialize in the L2 at
//!   [`GpuSpec::atomic_same_addr_ns`] per operation — the effect that makes
//!   the naive (non-tiled) selection 9x slower (Section 3.3). Atomics to
//!   scattered addresses are throughput-bound at roughly one per SM-cycle.

use crystal_hardware::GpuSpec;

use crate::stats::KernelStats;

/// Per-component simulated times for one kernel, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimTime {
    /// Global (HBM) traffic time.
    pub hbm: f64,
    /// L2 traffic time.
    pub l2: f64,
    /// Shared-memory traffic time.
    pub shared: f64,
    /// ALU + SFU time.
    pub compute: f64,
    /// Serialized/contended atomic time.
    pub atomic: f64,
    /// Fixed kernel-launch overhead.
    pub launch: f64,
}

impl SimTime {
    /// Total kernel time: latency-hiding max over components plus launch
    /// overhead.
    pub fn total_secs(&self) -> f64 {
        self.bottleneck_secs() + self.launch
    }

    /// The dominating component (without launch overhead).
    pub fn bottleneck_secs(&self) -> f64 {
        self.hbm
            .max(self.l2)
            .max(self.shared)
            .max(self.compute)
            .max(self.atomic)
    }

    /// Name of the dominating component.
    pub fn bottleneck(&self) -> &'static str {
        let b = self.bottleneck_secs();
        if b == self.hbm {
            "hbm"
        } else if b == self.l2 {
            "l2"
        } else if b == self.shared {
            "shared"
        } else if b == self.compute {
            "compute"
        } else {
            "atomic"
        }
    }

    /// Adds another kernel's time (sequential composition).
    pub fn seq(&self, other: &SimTime) -> SimTime {
        // Sequential kernels do not overlap; fold each component so the
        // report stays meaningful, and accumulate launch overheads.
        SimTime {
            hbm: self.hbm + other.hbm,
            l2: self.l2 + other.l2,
            shared: self.shared + other.shared,
            compute: self.compute + other.compute,
            atomic: self.atomic + other.atomic,
            launch: self.launch + other.launch,
        }
    }
}

/// Efficiency model inputs for one launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchShape {
    pub block_dim: usize,
    pub items_per_thread: usize,
    pub shared_mem_per_block: usize,
    /// Whether the kernel uses block-wide synchronization (tile kernels do).
    pub uses_barriers: bool,
}

/// Vector-load efficiency as a function of items per thread (Figure 9:
/// 4 items load as one `int4`; 2 leave half the vector lanes empty; 1 gains
/// nothing).
pub fn load_efficiency(items_per_thread: usize) -> f64 {
    match items_per_thread {
        0 | 1 => 0.55,
        2 => 0.80,
        3 => 0.90,
        _ => 1.0,
    }
}

/// Occupancy-driven bandwidth efficiency: below full occupancy there are not
/// enough warps in flight to cover DRAM latency.
pub fn occupancy_efficiency(occupancy: f64) -> f64 {
    0.6 + 0.4 * occupancy.clamp(0.0, 1.0)
}

/// Synchronization efficiency: barriers across `block_dim` threads stall
/// longer for bigger blocks, and fewer independent blocks fit per SM.
pub fn sync_efficiency(block_dim: usize, uses_barriers: bool) -> f64 {
    if !uses_barriers {
        return 1.0;
    }
    1.0 / (1.0 + 0.25 * block_dim as f64 / 2048.0)
}

/// Computes the simulated time for a kernel given its resource counters and
/// launch shape.
pub fn kernel_time(spec: &GpuSpec, shape: &LaunchShape, stats: &KernelStats) -> SimTime {
    let occ = spec.occupancy(shape.block_dim, shape.shared_mem_per_block);
    let eff = load_efficiency(shape.items_per_thread)
        * occupancy_efficiency(occ)
        * sync_efficiency(shape.block_dim, shape.uses_barriers);

    let hbm = stats.hbm_read_bytes() as f64 / (spec.read_bw * eff)
        + stats.hbm_write_bytes() as f64 / (spec.write_bw * eff);
    let l2 = stats.l2_bytes as f64 / spec.l2_bw;
    let shared = stats.shared_bytes as f64 / spec.l1_smem_bw;

    // One ALU op per core per clock; SFU ops (exp, rsqrt, ...) at 1/4 rate.
    let flops = spec.flops();
    let compute = stats.compute_ops as f64 / flops + stats.sfu_ops as f64 / (flops / 4.0);

    // Same-address atomics serialize; scattered atomics are bound by
    // roughly one resolved atomic per SM-cycle device-wide.
    let scattered_atomic_rate = spec.num_sms as f64 * spec.clock_ghz * 1e9;
    let atomic = stats.same_addr_atomics as f64 * spec.atomic_same_addr_ns * 1e-9
        + stats.scattered_atomics as f64 / scattered_atomic_rate;

    SimTime {
        hbm,
        l2,
        shared,
        compute,
        atomic,
        launch: spec.kernel_launch_us * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystal_hardware::nvidia_v100;

    fn shape(block_dim: usize, ipt: usize) -> LaunchShape {
        LaunchShape {
            block_dim,
            items_per_thread: ipt,
            shared_mem_per_block: 0,
            uses_barriers: true,
        }
    }

    /// A streaming kernel at the best configuration should run at close to
    /// full memory bandwidth (Section 4.2's saturation result).
    #[test]
    fn streaming_kernel_saturates_bandwidth() {
        let spec = nvidia_v100();
        let n: u64 = 1 << 28;
        let stats = KernelStats {
            global_read_bytes: 4 * n,
            global_write_bytes: 2 * n,
            blocks: n / 512,
            same_addr_atomics: n / 512,
            barriers: 2 * (n / 512),
            ..Default::default()
        };
        let t = kernel_time(&spec, &shape(128, 4), &stats);
        let ideal = (6 * n) as f64 / 880.0e9;
        assert!(
            t.total_secs() < ideal * 1.1,
            "{} vs ideal {}",
            t.total_secs(),
            ideal
        );
        assert_eq!(t.bottleneck(), "hbm");
    }

    /// Figure 9: one item per thread is markedly slower than four.
    #[test]
    fn ipt_ordering_matches_figure9() {
        let spec = nvidia_v100();
        let stats = KernelStats {
            global_read_bytes: 1 << 31,
            ..Default::default()
        };
        let t1 = kernel_time(&spec, &shape(128, 1), &stats).total_secs();
        let t2 = kernel_time(&spec, &shape(128, 2), &stats).total_secs();
        let t4 = kernel_time(&spec, &shape(128, 4), &stats).total_secs();
        assert!(t1 > t2 && t2 > t4);
        assert!(t1 / t4 > 1.5, "IPT=1 should be >1.5x slower than IPT=4");
    }

    /// Figure 9: tiny blocks lose on atomics + occupancy; huge blocks lose
    /// on synchronization. Block sizes of 128-256 are the sweet spot.
    #[test]
    fn block_size_sweet_spot_matches_figure9() {
        let spec = nvidia_v100();
        let n: u64 = 1 << 29;
        let time_for = |bs: usize| {
            let tile = (bs * 4) as u64;
            let blocks = n / tile;
            let stats = KernelStats {
                global_read_bytes: 4 * n,
                global_write_bytes: 2 * n,
                same_addr_atomics: blocks,
                barriers: 2 * blocks,
                blocks,
                ..Default::default()
            };
            let sh = LaunchShape {
                block_dim: bs,
                items_per_thread: 4,
                shared_mem_per_block: (tile as usize) * 8,
                uses_barriers: true,
            };
            kernel_time(&spec, &sh, &stats).total_secs()
        };
        let t32 = time_for(32);
        let t128 = time_for(128);
        let t256 = time_for(256);
        let t1024 = time_for(1024);
        assert!(t128 < t32, "128 should beat 32 ({t128} vs {t32})");
        assert!(t256 < t32);
        assert!(t128 < t1024, "128 should beat 1024 ({t128} vs {t1024})");
    }

    /// Section 3.3: millions of same-address atomics dominate runtime — the
    /// independent-threads selection pathology.
    #[test]
    fn contended_atomics_dominate() {
        let spec = nvidia_v100();
        let stats = KernelStats {
            global_read_bytes: 1 << 31, // ~2.4ms of traffic
            same_addr_atomics: 1 << 28, // ~188ms serialized
            ..Default::default()
        };
        let t = kernel_time(&spec, &shape(256, 1), &stats);
        assert_eq!(t.bottleneck(), "atomic");
        assert!(t.total_secs() > 0.1);
    }

    #[test]
    fn seq_accumulates() {
        let a = SimTime {
            hbm: 1.0,
            launch: 0.1,
            ..Default::default()
        };
        let b = SimTime {
            hbm: 2.0,
            launch: 0.1,
            ..Default::default()
        };
        let c = a.seq(&b);
        assert!((c.total_secs() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn efficiency_factors_bounded() {
        for ipt in 0..16 {
            let e = load_efficiency(ipt);
            assert!((0.0..=1.0).contains(&e));
        }
        for occ in [0.0, 0.3, 0.5, 1.0] {
            let e = occupancy_efficiency(occ);
            assert!((0.0..=1.0).contains(&e));
        }
        assert_eq!(sync_efficiency(4096, false), 1.0);
        assert!(sync_efficiency(1024, true) < sync_efficiency(128, true));
    }
}

//! # crystal-gpu-sim — a functional + timing simulator of a V100-class GPU
//!
//! This crate stands in for the CUDA device the paper runs on. It has two
//! halves that operate in lockstep:
//!
//! 1. **Functional execution** — kernels are Rust closures invoked once per
//!    *thread block* (the tile-based execution model treats the thread block
//!    as the basic execution unit, so this is the natural granularity).
//!    They read and write real [`mem::DeviceBuffer`] data, so every kernel
//!    produces bit-exact results that the test suite checks against CPU
//!    reference implementations.
//! 2. **Timing accounting** — every memory operation a kernel performs is
//!    declared through its [`exec::BlockCtx`]: coalesced tile loads/stores,
//!    random gathers/scatters (which pass through a set-associative LRU L2
//!    cache simulator), shared-memory traffic, contended and scattered
//!    atomics, barriers and ALU/SFU work. [`timing`] converts the resulting
//!    [`stats::KernelStats`] into a simulated runtime using the paper's own
//!    methodology: a bandwidth-saturation model in which the kernel time is
//!    the *maximum* of its resource components (GPUs hide latency by warp
//!    oversubscription — Section 5.3 of the paper), modulated by occupancy,
//!    vector-load efficiency and synchronization pressure (Section 3.3).
//!
//! The combination lets the workspace reproduce every GPU-side figure of the
//! paper — including cache step functions (Figure 13), atomic-contention
//! collapse (Figure 9, Section 3.3) and PCIe-bound coprocessing (Figure 3) —
//! on a machine with no GPU, while remaining a real, runnable query engine.

pub mod cache;
pub mod exec;
pub mod fused;
pub mod mem;
pub mod pcie;
pub mod stats;
pub mod stream;
pub mod timing;

pub use exec::{Gpu, LaunchConfig};
pub use fused::FusedStarKernel;
pub use mem::DeviceBuffer;
pub use stats::{ExecStats, KernelReport, KernelStats};
pub use stream::{CopyEvents, StreamEngine, StreamSpan};
pub use timing::SimTime;

//! Eviction-under-pressure suite: a query stream replayed through a
//! [`DeviceSession`] whose cache budget (and device capacity) are
//! deliberately small must evict — and stay byte-identical to the
//! uncached per-query path while never exceeding the device's memory.

use crystal::gpu_sim::Gpu;
use crystal::hardware::nvidia_v100;
use crystal::runtime::DeviceSession;
use crystal::ssb::engines::{gpu as gpu_engine, reference};
use crystal::ssb::queries::all_queries;
use crystal::ssb::SsbData;

/// A V100 shrunk to `capacity` bytes of device memory.
fn small_v100(capacity: usize) -> Gpu {
    let mut spec = nvidia_v100();
    spec.mem_capacity = capacity;
    Gpu::new(spec)
}

#[test]
fn starved_session_evicts_but_stays_byte_identical() {
    let d = SsbData::generate_scaled(1, 0.002, 77); // 12k fact rows
    let queries = all_queries(&d);

    // The uncached oracle: the row-wise reference engine, plus one
    // transient-session device run per query (the pre-session lifecycle).
    let expected: Vec<_> = queries.iter().map(|q| reference::execute(&d, q)).collect();
    let mut uncached_gpu = Gpu::new(nvidia_v100());
    for (q, e) in queries.iter().zip(&expected) {
        let run = gpu_engine::execute(&mut uncached_gpu, &d, q).unwrap();
        assert_eq!(&run.result, e, "{} uncached diverged", q.name);
    }

    // 64 MB of device memory (any single query's scratch fits), but a
    // cache budget far below the stream's total working set: the nine
    // fact columns (~48 KB each) plus the date dimension's perfect-hash
    // table alone (~560 KB at this scale) overflow it.
    let capacity = 64 << 20;
    let budget = 400_000;
    let mut gpu = small_v100(capacity);
    let mut sess = DeviceSession::with_budget(&mut gpu, budget);

    for pass in 0..2 {
        for (q, e) in queries.iter().zip(&expected) {
            let run = gpu_engine::execute_session(&mut sess, &d, q).unwrap();
            assert_eq!(
                &run.result, e,
                "{} pass {pass} diverged under memory pressure",
                q.name
            );
        }
    }

    let stats = sess.stats().clone();
    assert!(
        stats.evictions > 0,
        "a {budget}-byte budget must evict: {stats:?}"
    );
    assert!(
        stats.cached_bytes <= budget,
        "cache {} exceeds its budget {budget}",
        stats.cached_bytes
    );
    // Some reuse still happens even under pressure (hot columns of
    // consecutive queries survive between queries).
    assert!(stats.col_hits + stats.ht_hits > 0, "{stats:?}");

    let high_water = sess.gpu().mem_high_water();
    assert!(
        high_water <= capacity,
        "high water {high_water} exceeds the device's {capacity}"
    );
    drop(sess);
    assert_eq!(gpu.mem_used(), 0, "session teardown must free everything");
}

/// With a budget comfortably above the stream's working set the same
/// replay never evicts — pressure, not policy, is what evicted above.
#[test]
fn roomy_session_never_evicts() {
    let d = SsbData::generate_scaled(1, 0.002, 77);
    let queries = all_queries(&d);
    let mut gpu = Gpu::new(nvidia_v100());
    let mut sess = DeviceSession::new(&mut gpu);
    for q in &queries {
        let run = gpu_engine::execute_session(&mut sess, &d, q).unwrap();
        assert_eq!(run.result, reference::execute(&d, q), "{}", q.name);
    }
    assert_eq!(sess.stats().evictions, 0);
    // All nine fact columns and every distinct dimension build are
    // resident by the end of the sweep.
    assert!(sess.stats().cached_bytes > 0);
}

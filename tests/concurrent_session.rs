//! Concurrent differential suite: the multi-tenant frontend must be a
//! pure reordering of work.
//!
//! Interleaving N tenant streams through one shared [`DeviceSession`]
//! as deficit-round-robin morsel grants — including under a starved
//! cache budget that forces evictions between grants — must produce
//! results byte-identical to a serial per-tenant replay, and to the
//! reference oracle. A separate regression pins the dataset
//! fingerprint in [`ColumnKey`](crystal::runtime::ColumnKey): two
//! datasets served through one session must never alias each other's
//! cached columns.

use crystal::gpu_sim::Gpu;
use crystal::hardware::{intel_i7_6900, nvidia_v100, pcie_gen3};
use crystal::runtime::DeviceSession;
use crystal::server::{serve, serve_serial, ServerConfig};
use crystal::ssb::engines::{gpu as gpu_engine, reference};
use crystal::ssb::queries::{all_queries, query, QueryId};
use crystal::ssb::SsbData;
use crystal_bench::stream::{tenant_streams, STREAM_SEED};

fn data() -> SsbData {
    SsbData::generate_scaled(1, 0.002, STREAM_SEED)
}

/// Four interleaved tenant streams equal the serial replay and the
/// oracle, query for query, byte for byte.
#[test]
fn interleaved_tenants_match_serial_replay_byte_identically() {
    let d = data();
    let tenants = tenant_streams(&d, 4, 6, STREAM_SEED);
    let cpu = intel_i7_6900();
    let pcie = pcie_gen3();
    let cfg = ServerConfig::default();

    let mut gpu = Gpu::new(nvidia_v100());
    let conc = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
    let mut gpu_serial = Gpu::new(nvidia_v100());
    let serial = serve_serial(&mut gpu_serial, &cpu, &pcie, &d, &tenants, &cfg);

    assert_eq!(conc.completed.len(), 24);
    for (t, stream) in tenants.iter().enumerate() {
        let got = conc.tenant_results(t);
        let ser = serial.tenant_results(t);
        assert_eq!(got.len(), stream.len());
        for (i, q) in stream.iter().enumerate() {
            let expected = reference::execute(&d, q);
            assert_eq!(*got[i], expected, "tenant {t} query {i} vs oracle");
            assert_eq!(*got[i], *ser[i], "tenant {t} query {i} vs serial");
        }
    }
    // The whole point of sharing the session: tenants draw from one
    // catalogue, so the concurrent run re-uses residency across them.
    assert!(conc.stats.col_hits > 0, "no cross-tenant cache sharing");
}

/// The same interleaving under a starved cache budget: grants from
/// different tenants trigger evictions between each other, and the
/// results still cannot drift.
#[test]
fn memory_starved_interleaving_evicts_and_stays_byte_identical() {
    let d = data();
    let tenants = tenant_streams(&d, 3, 6, STREAM_SEED);
    let cpu = intel_i7_6900();
    let pcie = pcie_gen3();
    let cfg = ServerConfig {
        // Barely two plain fact columns: every working set overflows
        // the cache, so pins are released into immediate eviction.
        device_budget: Some(9 * d.lineorder.rows()),
        ..ServerConfig::default()
    };

    let mut gpu = Gpu::new(nvidia_v100());
    let report = serve(&mut gpu, &cpu, &pcie, &d, &tenants, &cfg);
    assert!(
        report.stats.evictions > 0,
        "the starved budget never evicted: {:?}",
        report.stats
    );
    assert_eq!(report.completed.len(), 18);
    for (t, stream) in tenants.iter().enumerate() {
        let got = report.tenant_results(t);
        for (i, q) in stream.iter().enumerate() {
            assert_eq!(
                *got[i],
                reference::execute(&d, q),
                "tenant {t} query {i} diverged under eviction pressure"
            );
        }
    }
}

/// Dataset-fingerprint regression: two generated datasets served
/// through one session share column ids (0..=8) but must never share
/// cached columns — before `ColumnKey` carried the dataset
/// fingerprint, the second dataset silently read the first one's bits.
#[test]
fn two_datasets_through_one_session_never_alias() {
    let d1 = SsbData::generate_scaled(1, 0.002, STREAM_SEED);
    let d2 = SsbData::generate_scaled(1, 0.002, STREAM_SEED + 1);
    assert_ne!(d1.fingerprint(), d2.fingerprint());

    let mut gpu = Gpu::new(nvidia_v100());
    let mut sess = DeviceSession::new(&mut gpu);
    for id in [QueryId::new(1, 1), QueryId::new(2, 1), QueryId::new(3, 2)] {
        let q1 = query(&d1, id);
        let q2 = query(&d2, id);
        // Alternate datasets within one warm session.
        let r1 = gpu_engine::execute_session(&mut sess, &d1, &q1).unwrap();
        let r2 = gpu_engine::execute_session(&mut sess, &d2, &q2).unwrap();
        assert_eq!(r1.result, reference::execute(&d1, &q1), "{} on d1", q1.name);
        assert_eq!(r2.result, reference::execute(&d2, &q2), "{} on d2", q2.name);
    }
}

/// The serial baseline itself agrees with the oracle on the full
/// 13-query suite (it is the denominator of every contention band).
#[test]
fn serial_replay_matches_the_oracle_on_the_full_suite() {
    let d = data();
    let stream: Vec<_> = all_queries(&d);
    let tenants = vec![stream.clone()];
    let cpu = intel_i7_6900();
    let pcie = pcie_gen3();
    let mut gpu = Gpu::new(nvidia_v100());
    let report = serve_serial(
        &mut gpu,
        &cpu,
        &pcie,
        &d,
        &tenants,
        &ServerConfig::default(),
    );
    let got = report.tenant_results(0);
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(*got[i], reference::execute(&d, q), "{}", q.name);
    }
}

//! Cross-device operator tests: every Section 4 operator must produce
//! identical results on the real CPU implementations and the simulated
//! GPU kernels, across selectivities, table sizes and radix widths.

use crystal::core::hash::{slots_for_fill_rate, DeviceHashTable, HashScheme};
use crystal::core::kernels;
use crystal::cpu;
use crystal::gpu_sim::exec::LaunchConfig;
use crystal::gpu_sim::Gpu;
use crystal::hardware::nvidia_v100;
use crystal::storage::gen;

const N: usize = 50_000;

#[test]
fn select_agrees_across_devices_and_variants() {
    let domain = 1_000_000;
    let data = gen::uniform_i32_domain(N, domain, 3);
    let mut gpu = Gpu::new(nvidia_v100());
    let col = gpu.alloc_from(&data);
    for sigma in [0.0, 0.13, 0.5, 0.91, 1.0] {
        let v = gen::threshold_for_selectivity(domain, sigma);
        let mut expected: Vec<i32> = data.iter().copied().filter(|&y| y < v).collect();
        expected.sort_unstable();

        let (out, _) = kernels::select_where(
            &mut gpu,
            &col,
            LaunchConfig::default_for_items(N),
            move |y| y < v,
        );
        let mut got_gpu = out.to_host();
        got_gpu.sort_unstable();
        assert_eq!(got_gpu, expected, "gpu sigma={sigma}");
        gpu.free(out);

        for f in [
            cpu::select::select_branching,
            cpu::select::select_predication,
            cpu::select::select_simd_pred,
        ] {
            let mut got = f(&data, v, 4);
            got.sort_unstable();
            assert_eq!(got, expected, "cpu sigma={sigma}");
        }
    }
}

#[test]
fn projection_agrees_within_float_tolerance() {
    let x1 = gen::uniform_f32(N, 5);
    let x2 = gen::uniform_f32(N, 6);
    let mut gpu = Gpu::new(nvidia_v100());
    let d1 = gpu.alloc_from(&x1);
    let d2 = gpu.alloc_from(&x2);
    let (lin, _) = kernels::project_linear(&mut gpu, &d1, &d2, 2.5, -1.5);
    let (sig, _) = kernels::project_sigmoid(&mut gpu, &d1, &d2, 0.7, 0.3);
    let cpu_lin = cpu::project::project_linear_opt(&x1, &x2, 2.5, -1.5, 4);
    let cpu_sig = cpu::project::project_sigmoid_opt(&x1, &x2, 0.7, 0.3, 4);
    for i in 0..N {
        assert_eq!(lin.as_slice()[i], cpu_lin[i]);
        assert!((sig.as_slice()[i] - cpu_sig[i]).abs() < 1e-6);
    }
}

#[test]
fn hash_join_checksum_agrees_across_devices() {
    for build_n in [100usize, 4_096, 100_000] {
        let build_keys = gen::shuffled_keys(build_n, 7);
        let build_vals: Vec<i32> = (0..build_n as i32).map(|v| v * 3).collect();
        let probe_keys = gen::foreign_keys(N, build_n, 8);
        let probe_vals: Vec<i32> = (0..N as i32).collect();
        let slots = slots_for_fill_rate(build_n, 0.5);

        let cpu_ht = cpu::join::CpuHashTable::build_parallel(&build_keys, &build_vals, slots, 4);
        let scalar = cpu::join::probe_scalar(&cpu_ht, &probe_keys, &probe_vals, 4);
        let simd = cpu::join::probe_simd(&cpu_ht, &probe_keys, &probe_vals, 4);
        let prefetch = cpu::join::probe_prefetch(&cpu_ht, &probe_keys, &probe_vals, 4);
        assert_eq!(scalar, simd);
        assert_eq!(scalar, prefetch);

        let mut gpu = Gpu::new(nvidia_v100());
        let bk = gpu.alloc_from(&build_keys);
        let bv = gpu.alloc_from(&build_vals);
        let (ht, _) = DeviceHashTable::build(&mut gpu, &bk, &bv, slots, HashScheme::Mult);
        let pk = gpu.alloc_from(&probe_keys);
        let pv = gpu.alloc_from(&probe_vals);
        let (sum, _) = kernels::hash_join_sum(&mut gpu, &pk, &pv, &ht);
        assert_eq!(sum.checksum, scalar, "build_n={build_n}");
        assert_eq!(sum.matches, N);
    }
}

#[test]
fn sorts_agree_across_devices_and_algorithms() {
    let keys: Vec<u32> = gen::uniform_i32(N, 9).iter().map(|&k| k as u32).collect();
    let vals: Vec<u32> = (0..N as u32).collect();

    let (cpu_k, cpu_v) = cpu::radix::lsb_radix_sort(&keys, &vals, 4);

    let mut gpu = Gpu::new(nvidia_v100());
    let dk = gpu.alloc_from(&keys);
    let dv = gpu.alloc_from(&vals);
    let (gk, gv, _) = kernels::lsb_radix_sort(&mut gpu, &dk, &dv).unwrap();
    // LSB is stable on both devices: exact match including values.
    assert_eq!(gk.as_slice(), &cpu_k[..]);
    assert_eq!(gv.as_slice(), &cpu_v[..]);

    let (mk, mv, _) = kernels::msb_radix_sort(&mut gpu, &dk, &dv).unwrap();
    assert_eq!(mk.as_slice(), &cpu_k[..], "MSB keys must be fully sorted");
    // MSB is unstable; check the value permutation is consistent.
    for (k, v) in mk.as_slice().iter().zip(mv.as_slice()) {
        assert_eq!(keys[*v as usize], *k);
    }
}

#[test]
fn radix_partition_agrees_across_devices() {
    let keys: Vec<u32> = gen::uniform_i32(N, 11).iter().map(|&k| k as u32).collect();
    let vals: Vec<u32> = (0..N as u32).collect();
    for (bits, shift) in [(4u32, 0u32), (7, 12), (6, 26)] {
        let (ck, cv) = cpu::radix::radix_partition_stable(&keys, &vals, bits, shift, 4);
        let mut gpu = Gpu::new(nvidia_v100());
        let dk = gpu.alloc_from(&keys);
        let dv = gpu.alloc_from(&vals);
        let (gk, gv, _) = crystal::core::kernels::radix::radix_partition_pass(
            &mut gpu,
            &dk,
            &dv,
            bits,
            shift,
            crystal::core::kernels::radix::RadixOrder::Stable,
        )
        .unwrap();
        assert_eq!(gk.as_slice(), &ck[..], "bits={bits} shift={shift}");
        assert_eq!(gv.as_slice(), &cv[..], "bits={bits} shift={shift}");
    }
}

#[test]
fn aggregation_agrees_across_devices() {
    let data = gen::uniform_i32_domain(N, 1000, 13);
    let mut gpu = Gpu::new(nvidia_v100());
    let col = gpu.alloc_from(&data);
    let (sum, _) = kernels::column_sum_i64(&mut gpu, &col);
    let expected: i64 = data.iter().map(|&v| v as i64).sum();
    assert_eq!(sum, expected);
}

//! Cross-engine SSB integration tests: every engine style must produce
//! identical results for all 13 benchmark queries — the GPU's tile-based
//! kernels, the fused vectorized CPU engine, the tuple-at-a-time engine,
//! the materializing engine and the thread-per-row GPU engine are all
//! checked against the row-wise reference oracle on one shared dataset.

use crystal::gpu_sim::Gpu;
use crystal::hardware::nvidia_v100;
use crystal::ssb::engines::{cpu, gpu, hyper, monet, omnisci, reference};
use crystal::ssb::queries::all_queries;
use crystal::ssb::SsbData;

fn dataset() -> SsbData {
    SsbData::generate_scaled(1, 0.004, 777) // 24k fact rows
}

#[test]
fn all_engines_agree_on_all_13_queries() {
    let d = dataset();
    let mut device = Gpu::new(nvidia_v100());
    let threads = 4;
    for q in all_queries(&d) {
        // Highly selective queries (q3.4's two-city December filter) can be
        // legitimately empty at this scale; equality still verifies them.
        let expected = reference::execute(&d, &q);

        let (got_cpu, trace) = cpu::execute(&d, &q, threads);
        assert_eq!(got_cpu, expected, "{}: fused CPU engine diverged", q.name);
        assert_eq!(trace.fact_rows, d.lineorder.rows());

        let got_hyper = hyper::execute(&d, &q, threads);
        assert_eq!(
            got_hyper, expected,
            "{}: tuple-at-a-time engine diverged",
            q.name
        );

        let got_monet = monet::execute(&d, &q, threads);
        assert_eq!(
            got_monet, expected,
            "{}: materializing engine diverged",
            q.name
        );

        device.reset_l2();
        let run = gpu::execute(&mut device, &d, &q).unwrap();
        assert_eq!(
            run.result, expected,
            "{}: Crystal GPU engine diverged",
            q.name
        );

        device.reset_l2();
        let omni = omnisci::execute_unfused(&mut device, &d, &q);
        assert_eq!(
            omni.result, expected,
            "{}: thread-per-row GPU engine diverged",
            q.name
        );
    }
}

#[test]
fn gpu_and_cpu_traces_agree_on_selectivities() {
    let d = dataset();
    let mut device = Gpu::new(nvidia_v100());
    for q in all_queries(&d) {
        let (_, cpu_trace) = cpu::execute(&d, &q, 4);
        let run = gpu::execute(&mut device, &d, &q).unwrap();
        assert_eq!(
            cpu_trace.pred_survivors, run.trace.pred_survivors,
            "{}",
            q.name
        );
        assert_eq!(cpu_trace.result_rows, run.trace.result_rows, "{}", q.name);
        for (a, b) in cpu_trace.stages.iter().zip(&run.trace.stages) {
            assert_eq!(a.probes, b.probes, "{}: stage probes", q.name);
            assert_eq!(a.hits, b.hits, "{}: stage hits", q.name);
        }
    }
}

#[test]
fn engines_agree_across_scale_factors() {
    for sf in [1usize, 2] {
        let d = SsbData::generate_scaled(sf, 0.002, 31);
        let mut device = Gpu::new(nvidia_v100());
        for q in all_queries(&d).into_iter().take(4) {
            let expected = reference::execute(&d, &q);
            let (got, _) = cpu::execute(&d, &q, 2);
            assert_eq!(got, expected, "{} sf{sf}", q.name);
            let run = gpu::execute(&mut device, &d, &q).unwrap();
            assert_eq!(run.result, expected, "{} sf{sf} gpu", q.name);
        }
    }
}

#[test]
fn grouped_results_decode_to_valid_attribute_values() {
    use crystal::ssb::QueryResult;
    let d = dataset();
    let q = crystal::ssb::queries::query(&d, crystal::ssb::QueryId::new(4, 3));
    let (result, _) = cpu::execute(&d, &q, 4);
    if let QueryResult::Groups(groups) = result {
        for (key, sum) in groups {
            // q4.3 groups by [s_city, p_brand1, d_year].
            assert_eq!(key.len(), 3);
            assert!((0..250).contains(&key[0]), "city {key:?}");
            assert!((0..1000).contains(&key[1]), "brand {key:?}");
            assert!((1992..=1998).contains(&key[2]), "year {key:?}");
            assert_ne!(sum, 0);
        }
    }
}

//! Model-vs-simulator validation: the paper's central claim is that its
//! bandwidth-saturation models predict GPU runtimes accurately. These
//! tests hold the workspace to the same standard — the analytic models of
//! `crystal-models` and the trace-driven simulator must agree on every
//! operator, and the headline ratios must stay in the paper's bands.

use crystal::core::hash::{slots_for_fill_rate, DeviceHashTable, HashScheme};
use crystal::core::kernels;
use crystal::gpu_sim::exec::LaunchConfig;
use crystal::gpu_sim::Gpu;
use crystal::hardware::{bandwidth_ratio, intel_i7_6900, nvidia_v100, MIB};
use crystal::models;
use crystal::storage::gen;

const N: usize = 1 << 20;

/// Simulated bottleneck seconds, scaled from run size to paper size.
fn scaled(r: &crystal::gpu_sim::KernelReport, from: usize, to: usize) -> f64 {
    r.time.bottleneck_secs() * to as f64 / from as f64
}

#[test]
fn select_simulation_tracks_model_within_15_percent() {
    let gspec = nvidia_v100();
    let mut gpu = Gpu::new(gspec.clone());
    let domain = 1 << 20;
    let data = gen::uniform_i32_domain(N, domain, 1);
    let col = gpu.alloc_from(&data);
    for sigma in [0.1, 0.5, 0.9] {
        let v = gen::threshold_for_selectivity(domain, sigma);
        let (out, r) = kernels::select_where(
            &mut gpu,
            &col,
            LaunchConfig::default_for_items(N),
            move |y| y < v,
        );
        gpu.free(out);
        let sim = scaled(&r, N, 1 << 28);
        let model = models::select::select_secs(1 << 28, sigma, gspec.read_bw, gspec.write_bw);
        let err = (sim - model).abs() / model;
        assert!(
            err < 0.15,
            "sigma {sigma}: sim {sim} vs model {model} ({err:.2})"
        );
    }
}

#[test]
fn project_simulation_tracks_model_within_15_percent() {
    let gspec = nvidia_v100();
    let mut gpu = Gpu::new(gspec.clone());
    let x1 = gpu.alloc_from(&gen::uniform_f32(N, 2));
    let x2 = gpu.alloc_from(&gen::uniform_f32(N, 3));
    let (out, r) = kernels::project_linear(&mut gpu, &x1, &x2, 1.0, 1.0);
    gpu.free(out);
    let sim = scaled(&r, N, 1 << 28);
    let model = models::project::project_secs(1 << 28, gspec.read_bw, gspec.write_bw);
    let err = (sim - model).abs() / model;
    assert!(err < 0.15, "sim {sim} vs model {model}");
}

#[test]
fn join_simulation_tracks_model_in_both_cache_regimes() {
    let gspec = nvidia_v100();
    for ht_bytes in [MIB, 64 * MIB] {
        let mut gpu = Gpu::new(gspec.clone());
        let build_n = ht_bytes / 16;
        let bk = gpu.alloc_from(&gen::shuffled_keys(build_n, 4));
        let bv = gpu.alloc_from(&(0..build_n as i32).collect::<Vec<_>>());
        let (ht, _) = DeviceHashTable::build(
            &mut gpu,
            &bk,
            &bv,
            slots_for_fill_rate(build_n, 0.5),
            HashScheme::Mult,
        );
        let pk = gpu.alloc_from(&gen::foreign_keys(N, build_n, 5));
        let pv = gpu.alloc_from(&vec![1i32; N]);
        let (_, _) = kernels::hash_join_sum(&mut gpu, &pk, &pv, &ht); // warmup
        let (_, r) = kernels::hash_join_sum(&mut gpu, &pk, &pv, &ht);
        let sim = scaled(&r, N, 1 << 28);
        let model = models::join::join_probe_gpu_secs(1 << 28, ht_bytes, &gspec);
        let err = (sim - model).abs() / model;
        assert!(
            err < 0.30,
            "ht {ht_bytes}: sim {sim} vs model {model} ({err:.2})"
        );
    }
}

#[test]
fn operator_speedups_stay_in_paper_bands() {
    let c = intel_i7_6900();
    let g = nvidia_v100();
    let bw = bandwidth_ratio(&c, &g);
    let n = 1 << 28;

    // Select and project: gain ~ bandwidth ratio.
    let select = models::select::select_secs(n, 0.5, c.read_bw, c.write_bw)
        / models::select::select_secs(n, 0.5, g.read_bw, g.write_bw);
    assert!((select / bw - 1.0).abs() < 0.1, "select gain {select}");
    let project = models::project::project_secs(n, c.read_bw, c.write_bw)
        / models::project::project_secs(n, g.read_bw, g.write_bw);
    assert!((project / bw - 1.0).abs() < 0.1, "project gain {project}");

    // Sort: ~ bandwidth ratio (both 4 passes).
    let sort = models::sort::radix_sort_secs(n, 4, c.read_bw, c.write_bw)
        / models::sort::radix_sort_secs(n, 4, g.read_bw, g.write_bw);
    assert!((sort / bw - 1.0).abs() < 0.1, "sort gain {sort}");

    // Join: *below* the bandwidth ratio everywhere (the paper's point).
    for ht in [64 * 1024, 2 * MIB, 512 * MIB] {
        let gain = models::join::join_probe_cpu_secs(n, ht, &c)
            / models::join::join_probe_gpu_secs(n, ht, &g);
        assert!(
            gain < bw,
            "join gain {gain} at ht {ht} should be below {bw}"
        );
    }
}

#[test]
fn models_scale_linearly_in_input_size() {
    let g = nvidia_v100();
    for f in [
        models::select::select_secs(1 << 20, 0.5, g.read_bw, g.write_bw)
            / models::select::select_secs(1 << 21, 0.5, g.read_bw, g.write_bw),
        models::project::project_secs(1 << 20, g.read_bw, g.write_bw)
            / models::project::project_secs(1 << 21, g.read_bw, g.write_bw),
        models::sort::radix_sort_secs(1 << 20, 4, g.read_bw, g.write_bw)
            / models::sort::radix_sort_secs(1 << 21, 4, g.read_bw, g.write_bw),
    ] {
        assert!((f - 0.5).abs() < 1e-9, "ratio {f}");
    }
}

#[test]
fn full_query_speedup_exceeds_bandwidth_ratio() {
    // The paper's headline: SSB speedups (~25x) exceed the bandwidth ratio
    // (16.2x) because CPUs stall on irregular accesses while GPUs hide
    // them.
    let d = crystal::ssb::SsbData::generate_scaled(1, 0.01, 55);
    let c = intel_i7_6900();
    let g = nvidia_v100();
    let q = crystal::ssb::queries::query(&d, crystal::ssb::QueryId::new(2, 1));
    let (_, trace) = crystal::ssb::engines::cpu::execute(&d, &q, 4);
    let speedup = crystal::ssb::model::cpu_empirical_secs(&q, &trace, &c)
        / crystal::ssb::model::gpu_secs(&q, &trace, &g);
    assert!(
        speedup > bandwidth_ratio(&c, &g),
        "q2.1 modeled speedup {speedup} should exceed the bandwidth ratio"
    );
}

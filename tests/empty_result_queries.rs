//! Empty-result coverage: every engine must agree with the reference
//! oracle when a query selects *nothing* — the paper's cross-engine
//! methodology only holds if the engines agree on edge cases too, and
//! empty aggregates are where scalar/grouped code paths diverge most
//! easily (e.g. an engine returning `Scalar(0)` where the oracle returns
//! `Groups([])`, or emitting zero-sum groups).

use crystal::gpu_sim::Gpu;
use crystal::hardware::{nvidia_v100, pcie_gen3};
use crystal::ssb::engines::{copro, cpu, gpu, hyper, monet, omnisci, reference};
use crystal::ssb::plan::DimAttr;
use crystal::ssb::plan::{AggExpr, DimJoin, DimPred, DimTable, FactCol, FactPred, StarQuery};
use crystal::ssb::queries::{query, QueryId};
use crystal::ssb::{QueryResult, SsbData};

fn tiny_dataset(seed: u64) -> SsbData {
    SsbData::generate_scaled(1, 0.0005, seed) // 3k fact rows
}

/// Runs one query through every engine style and asserts each result
/// equals `expected`.
fn assert_all_engines(d: &SsbData, q: &StarQuery, expected: &QueryResult) {
    assert_eq!(&reference::execute(d, q), expected, "{}: oracle", q.name);

    let (got_cpu, trace) = cpu::execute(d, q, 4);
    assert_eq!(&got_cpu, expected, "{}: fused CPU engine", q.name);
    assert_eq!(
        trace.result_rows, 0,
        "{}: trace must report no rows",
        q.name
    );

    assert_eq!(
        &hyper::execute(d, q, 4),
        expected,
        "{}: tuple-at-a-time",
        q.name
    );
    assert_eq!(
        &monet::execute(d, q, 4),
        expected,
        "{}: materializing",
        q.name
    );

    let mut device = Gpu::new(nvidia_v100());
    let run = gpu::execute(&mut device, d, q).unwrap();
    assert_eq!(&run.result, expected, "{}: Crystal GPU engine", q.name);

    device.reset_l2();
    let omni = omnisci::execute_unfused(&mut device, d, q);
    assert_eq!(
        &omni.result, expected,
        "{}: thread-per-row GPU engine",
        q.name
    );

    device.reset_l2();
    let co = copro::execute(&mut device, &pcie_gen3(), d, q).unwrap();
    assert_eq!(
        &co.gpu_run.result, expected,
        "{}: coprocessor engine",
        q.name
    );
}

#[test]
fn impossible_fact_predicate_is_scalar_zero_on_every_engine() {
    let d = tiny_dataset(101);
    // lo_discount is 0..=10 by construction, so discount >= 90 selects
    // nothing; scalar aggregate (no group attrs) like the q1.x flight.
    let q = StarQuery {
        name: "empty.scalar",
        fact_preds: vec![FactPred::between(FactCol::Discount, 90, 99)],
        joins: vec![],
        agg: AggExpr::SumDiscountedPrice,
    };
    assert_all_engines(&d, &q, &QueryResult::Scalar(0));
}

#[test]
fn impossible_dim_filter_is_empty_groups_on_every_engine() {
    let d = tiny_dataset(202);
    // Region codes are 0..5; filtering on code 99 empties the join's hash
    // table, so the grouped aggregate has no surviving rows at all.
    let q = StarQuery {
        name: "empty.grouped",
        fact_preds: vec![],
        joins: vec![
            DimJoin {
                table: DimTable::Supplier,
                fact_fk: FactCol::SuppKey,
                filter: Some(DimPred::Eq(DimAttr::Region, 99)),
                group_attr: Some(DimAttr::Nation),
            },
            DimJoin {
                table: DimTable::Date,
                fact_fk: FactCol::OrderDate,
                filter: None,
                group_attr: Some(DimAttr::Year),
            },
        ],
        agg: AggExpr::SumRevenue,
    };
    assert_all_engines(&d, &q, &QueryResult::Groups(vec![]));
}

#[test]
fn q34_style_selectivity_is_empty_at_tiny_scale() {
    // The real q3.4 (two specific cities on both customer and supplier,
    // one specific month) has selectivity ~8e-7: at 3k fact rows it is
    // empty for essentially any seed. This is the benchmark's own
    // empty-result case, exercised through the stock query plan rather
    // than a synthetic impossible predicate.
    let d = tiny_dataset(777);
    let q = query(&d, QueryId::new(3, 4));
    let expected = reference::execute(&d, &q);
    assert_eq!(
        expected,
        QueryResult::Groups(vec![]),
        "expected q3.4 to be empty at this scale/seed; pick another seed"
    );
    assert_all_engines(&d, &q, &expected);
}

#[test]
fn grouped_empty_and_scalar_zero_are_distinct_results() {
    // The QueryResult equality path must distinguish an empty grouped
    // result from a scalar zero: they answer different queries (GROUP BY
    // with no groups vs an aggregate over zero rows).
    let empty = QueryResult::Groups(vec![]);
    let zero = QueryResult::Scalar(0);
    assert_ne!(empty, zero);
    assert_eq!(empty.rows(), 0);
    assert_eq!(zero.rows(), 1);
    assert_eq!(empty.checksum(), 0);
    assert_eq!(zero.checksum(), 0);
    // from_groups drops zero-sum groups, so "all groups cancelled" and
    // "no rows at all" compare equal — engines are allowed to differ in
    // which of the two they compute internally.
    assert_eq!(QueryResult::from_groups(vec![(vec![1], 0)]), empty);
    assert_eq!(QueryResult::from_groups(vec![]), empty);
}

//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::collection::vec;
use proptest::prelude::*;

use crystal::core::hash::{DeviceHashTable, HashScheme};
use crystal::core::kernels;
use crystal::cpu;
use crystal::gpu_sim::cache::Cache;
use crystal::gpu_sim::exec::LaunchConfig;
use crystal::gpu_sim::Gpu;
use crystal::hardware::{nvidia_v100, CacheLevel};
use crystal::ssb::engines::{group_decode, group_index};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Crystal selection kernel returns exactly the matching multiset,
    /// for arbitrary data and thresholds.
    #[test]
    fn select_kernel_is_a_filter(data in vec(any::<i32>(), 0..4000), v in any::<i32>()) {
        let mut gpu = Gpu::new(nvidia_v100());
        let col = gpu.alloc_from(&data);
        let (out, _) = kernels::select_gt(&mut gpu, &col, v);
        let mut got = out.to_host();
        got.sort_unstable();
        let mut expected: Vec<i32> = data.iter().copied().filter(|&y| y > v).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// All three CPU selection variants are equivalent.
    #[test]
    fn cpu_select_variants_agree(data in vec(-1000i32..1000, 0..5000), v in -1000i32..1000) {
        let mut a = cpu::select::select_branching(&data, v, 3);
        let mut b = cpu::select::select_predication(&data, v, 3);
        let mut c = cpu::select::select_simd_pred(&data, v, 3);
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// CPU stable radix partitioning is a stable, digit-grouped permutation
    /// for any radix width and shift.
    #[test]
    fn radix_partition_invariants(
        keys in vec(any::<u32>(), 1..3000),
        bits in 1u32..9,
        shift_sel in 0u32..4,
    ) {
        let shift = shift_sel * 8;
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (ok, ov) = cpu::radix::radix_partition_stable(&keys, &vals, bits, shift, 3);
        let mask = (1u64 << bits) - 1;
        let digit = |k: u32| ((k as u64 >> shift) & mask) as u32;
        // Grouped by digit.
        for w in ok.windows(2) {
            prop_assert!(digit(w[0]) <= digit(w[1]));
        }
        // Stable: carried input positions ascend within a digit.
        for i in 1..ok.len() {
            if digit(ok[i - 1]) == digit(ok[i]) {
                prop_assert!(ov[i - 1] < ov[i]);
            }
        }
        // Permutation.
        let mut orig: Vec<(u32, u32)> = keys.iter().copied().zip(vals).collect();
        let mut got: Vec<(u32, u32)> = ok.into_iter().zip(ov).collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
    }

    /// Both GPU sorts order any input exactly like std sort.
    #[test]
    fn gpu_sorts_match_std(keys in vec(any::<u32>(), 1..2000)) {
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut gpu = Gpu::new(nvidia_v100());
        let dk = gpu.alloc_from(&keys);
        let dv = gpu.alloc_from(&vals);
        let (lk, _, _) = kernels::lsb_radix_sort(&mut gpu, &dk, &dv).unwrap();
        prop_assert_eq!(lk.as_slice(), &sorted[..]);
        let (mk, _, _) = kernels::msb_radix_sort(&mut gpu, &dk, &dv).unwrap();
        prop_assert_eq!(mk.as_slice(), &sorted[..]);
    }

    /// The device hash table is an exact set: every inserted key probes to
    /// its payload, absent keys probe to None.
    #[test]
    fn device_hash_table_set_semantics(
        raw_keys in vec(0i32..1_000_000, 1..800),
        probes in vec(0i32..1_000_000, 0..400),
    ) {
        let mut keys = raw_keys;
        keys.sort_unstable();
        keys.dedup();
        let vals: Vec<i32> = keys.iter().map(|k| k ^ 0x5A5A).collect();
        let mut gpu = Gpu::new(nvidia_v100());
        let dk = gpu.alloc_from(&keys);
        let dv = gpu.alloc_from(&vals);
        let slots = (keys.len() * 2).next_power_of_two();
        let (ht, _) = DeviceHashTable::build(&mut gpu, &dk, &dv, slots, HashScheme::Mult);
        let keyset: std::collections::HashSet<i32> = keys.iter().copied().collect();
        let mut results = Vec::new();
        gpu.launch("probe", LaunchConfig::default_for_items(probes.len().max(1)), |ctx| {
            if ctx.block_idx == 0 {
                for &p in &probes {
                    results.push((p, ht.probe(ctx, p)));
                }
            }
        });
        for (p, r) in results {
            if keyset.contains(&p) {
                prop_assert_eq!(r, Some(p ^ 0x5A5A));
            } else {
                prop_assert_eq!(r, None);
            }
        }
    }

    /// The cache simulator never reports more hits than accesses, and a
    /// second identical pass over a fitting working set is all hits.
    #[test]
    fn cache_lru_invariants(addrs in vec(0u64..8192, 1..500)) {
        let level = CacheLevel { name: "t", size: 16 * 1024, bandwidth: 1.0, line: 64, assoc: 4 };
        let mut cache = Cache::new(&level);
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        // 8192 bytes of addresses fit a 16KB cache: re-touch everything.
        cache.reset_counters();
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.misses(), 0);
    }

    /// Mixed-radix group encoding round-trips for any domain shape.
    #[test]
    fn group_index_roundtrip(shape in vec(1usize..40, 1..4), seed in any::<u64>()) {
        let mut s = seed;
        let codes: Vec<i32> = shape
            .iter()
            .map(|&d| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 33) as usize % d) as i32
            })
            .collect();
        let idx = group_index(&shape, &codes);
        prop_assert!(idx < shape.iter().product::<usize>());
        prop_assert_eq!(group_decode(&shape, idx), codes);
    }

    /// Dictionary encoding round-trips arbitrary strings.
    #[test]
    fn dictionary_roundtrip(words in vec("[a-z]{1,8}", 0..50)) {
        let mut dict = crystal::storage::Dictionary::new();
        let codes = dict.encode_all(words.iter().map(|s| s.as_str()));
        for (w, c) in words.iter().zip(&codes) {
            prop_assert_eq!(dict.decode(*c), Some(w.as_str()));
            prop_assert_eq!(dict.code(w), Some(*c));
        }
        prop_assert!(dict.len() <= words.len());
    }
}

//! Randomized cross-engine differential suite.
//!
//! Generates hundreds of seeded random star queries
//! (`crystal::ssb::arbitrary`) and checks that every rewired engine —
//! the morsel-driven vectorized CPU path, the tuple-at-a-time Hyper path,
//! and the cost-routed coprocessor path — produces a `QueryResult`
//! byte-identical to the row-wise reference oracle. Fixed suites exercise
//! a handful of plan shapes; this sweep exercises the whole descriptor
//! space, which is where scheduling and compaction bugs hide.
//!
//! Per-column physical encodings are randomized too
//! (`crystal::ssb::encoding::random_encodings`): each query also executes
//! directly on a fact table whose columns are independently plain,
//! min-width bit-packed, or packed at a wider width — results must stay
//! byte-identical with compression toggled on, off, and mixed, in both
//! pipeline modes and through the packed GPU path.
//!
//! The base seed is pinned by `CRYSTAL_DIFF_SEED` (decimal u64; default
//! 20260730) so CI runs are reproducible; any failure message names the
//! per-query seed, which reproduces the query alone via
//! `random_star_query(&data, seed)` (and its encodings via
//! `random_encodings(&data, seed ^ ENCODING_SALT)`).

use crystal::gpu_sim::Gpu;
use crystal::hardware::{intel_i7_6900, nvidia_v100, pcie_gen3};
use crystal::ssb::arbitrary::random_star_query;
use crystal::ssb::encoding::{random_encodings, EncodedFact};
use crystal::ssb::engines::{copro, cpu, hyper, reference};
use crystal::ssb::exec::{self, PipelineMode};
use crystal::ssb::SsbData;

/// Salt separating the encoding stream from the plan stream, so a query's
/// shape and its physical format vary independently.
const ENCODING_SALT: u64 = 0xE6C0_DE5A_17ED_u64;

/// Number of random queries the suite sweeps (the acceptance floor is
/// 200).
const QUERIES: u64 = 224;

/// Every `GPU_SIM_STRIDE`-th query additionally runs the full GPU
/// simulator via a forced coprocessor placement (the simulator is
/// functional but slow in debug builds; the routed coprocessor path —
/// which Section 3.1 sends to the host — runs for *all* queries).
const GPU_SIM_STRIDE: u64 = 16;

fn base_seed() -> u64 {
    std::env::var("CRYSTAL_DIFF_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_260_730)
}

#[test]
fn random_queries_agree_across_all_engines() {
    let seed = base_seed();
    let d = SsbData::generate_scaled(1, 0.002, seed); // 12k fact rows
    let mut gpu = Gpu::new(nvidia_v100());
    let cpu_spec = intel_i7_6900();
    let pcie = pcie_gen3();
    // An interconnect faster than DRAM forces Placement::Coprocessor so
    // the GPU half of the routed engine is also differentially tested.
    let mut fast_link = pcie_gen3();
    fast_link.bandwidth = cpu_spec.read_bw * 4.0;

    let mut grouped = 0usize;
    let mut nonempty = 0usize;
    let mut packed_runs = 0usize;
    for i in 0..QUERIES {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        grouped += usize::from(!q.group_attrs().is_empty());
        nonempty += usize::from(expected.checksum() != 0);

        let (got_cpu, trace) = cpu::execute(&d, &q, 4);
        assert_eq!(got_cpu, expected, "seed {qseed}: morsel CPU diverged");
        assert_eq!(trace.fact_rows, d.lineorder.rows());

        let got_hyper = hyper::execute(&d, &q, 4);
        assert_eq!(got_hyper, expected, "seed {qseed}: hyper diverged");

        // The same query over a randomly encoded fact table (per-column
        // plain / min-width / wider packing), both pipeline modes — the
        // physical format must be unobservable in the results.
        let enc = random_encodings(&d, qseed ^ ENCODING_SALT);
        packed_runs += usize::from(enc.any_packed());
        let fact = EncodedFact::encode(&d, &enc);
        let (got_enc, enc_trace) =
            exec::execute_encoded(&d, &fact, &q, 4, PipelineMode::Vectorized);
        assert_eq!(
            got_enc, expected,
            "seed {qseed}: encoded vectorized diverged"
        );
        assert_eq!(
            enc_trace.result_rows, trace.result_rows,
            "seed {qseed}: encoded trace diverged"
        );
        let (got_enc_t, _) = exec::execute_encoded(&d, &fact, &q, 2, PipelineMode::TupleAtATime);
        assert_eq!(got_enc_t, expected, "seed {qseed}: encoded tuple diverged");

        let placed = copro::execute_placed(&mut gpu, &pcie, &cpu_spec, &d, &q, 4);
        assert_eq!(
            placed.choice.placement,
            copro::Placement::Host,
            "seed {qseed}: PCIe routing must stay host-side"
        );
        assert_eq!(
            placed.result, expected,
            "seed {qseed}: routed coprocessor engine diverged"
        );

        if i % GPU_SIM_STRIDE == 0 {
            gpu.reset_l2();
            let dev = copro::execute_placed(&mut gpu, &fast_link, &cpu_spec, &d, &q, 4);
            assert_eq!(
                dev.choice.placement,
                copro::Placement::Coprocessor,
                "seed {qseed}"
            );
            assert_eq!(
                dev.result, expected,
                "seed {qseed}: GPU coprocessor path diverged"
            );

            // The packed GPU path: ship packed words over the (forced)
            // coprocessor route, unpack in registers on the device.
            gpu.reset_l2();
            let dev_enc =
                copro::execute_placed_encoded(&mut gpu, &fast_link, &cpu_spec, &d, &fact, &q, 4);
            assert_eq!(
                dev_enc.choice.placement,
                copro::Placement::Coprocessor,
                "seed {qseed}"
            );
            assert_eq!(
                dev_enc.result, expected,
                "seed {qseed}: packed GPU coprocessor path diverged"
            );
        }
    }

    // The sweep must genuinely exercise the space: a workload that
    // degenerated to all-scalar, all-empty or all-plain runs would
    // vacuously pass.
    assert!(grouped >= 50, "only {grouped} grouped queries generated");
    assert!(nonempty >= 50, "only {nonempty} non-empty results");
    assert!(
        packed_runs >= QUERIES as usize / 2,
        "only {packed_runs} packed-table runs"
    );
}

/// Width extremes are unobservable: every column packed at its minimum
/// width, and every column under the 32-bit no-op pack, both reproduce
/// the oracle on random queries.
#[test]
fn extreme_packing_widths_match_the_oracle() {
    use crystal::ssb::encoding::FactEncodings;
    use crystal::ssb::plan::FactCol;
    use crystal::storage::Encoding;

    let seed = base_seed() ^ 0xb175;
    let d = SsbData::generate_scaled(1, 0.001, seed);
    let tight = EncodedFact::encode(&d, &FactEncodings::packed_min(&d));
    let mut noop = FactEncodings::plain();
    for c in FactCol::ALL {
        noop.set(c, Encoding::BitPacked { bits: 32 });
    }
    let noop = EncodedFact::encode(&d, &noop);
    assert!(tight.compression_ratio() > 1.0);
    for i in 0..16u64 {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        for (label, fact) in [("min-width", &tight), ("32-bit no-op", &noop)] {
            let (r, _) = exec::execute_encoded(&d, fact, &q, 3, PipelineMode::Vectorized);
            assert_eq!(r, expected, "seed {qseed} {label}");
        }
    }
}

/// Warm-cache correctness under the pinned seed: the random query stream
/// replayed twice through one warm `DeviceSession` stays byte-identical
/// to the cold reference / CPU / HyPer results on both passes — cache
/// hits, memoized hash tables and evictionless reuse must all be
/// unobservable in the results.
#[test]
fn pinned_stream_replays_identically_through_a_warm_session() {
    use crystal::runtime::DeviceSession;
    use crystal::ssb::engines::gpu as gpu_engine;

    let seed = base_seed();
    let d = SsbData::generate_scaled(1, 0.001, seed); // 6k fact rows
    let stream: Vec<_> = (0..12u64)
        .map(|i| random_star_query(&d, seed.wrapping_add(i)))
        .collect();

    let mut gpu = Gpu::new(nvidia_v100());
    let mut sess = DeviceSession::new(&mut gpu);
    let mut first_pass = Vec::new();
    let mut after_first_pass = None;
    for (pass, replay) in [(0, false), (1, true)].into_iter() {
        for (i, q) in stream.iter().enumerate() {
            let expected = reference::execute(&d, q);
            let (got_cpu, _) = cpu::execute(&d, q, 4);
            assert_eq!(got_cpu, expected, "query {i}: morsel CPU diverged");
            let got_hyper = hyper::execute(&d, q, 4);
            assert_eq!(got_hyper, expected, "query {i}: hyper diverged");

            let run = gpu_engine::execute_session(&mut sess, &d, q).unwrap();
            assert_eq!(
                run.result, expected,
                "query {i} pass {pass}: warm session diverged from cold oracle"
            );
            if replay {
                assert_eq!(
                    run.result, first_pass[i],
                    "query {i}: replay diverged from its own first pass"
                );
            } else {
                first_pass.push(run.result.clone());
            }
        }
        if replay {
            // The second pass was served entirely from residency: no new
            // uploads, no new builds relative to the first pass.
            let first = after_first_pass.as_ref().unwrap();
            let s = sess.stats();
            assert_eq!(s.uploaded_since(first), 0, "replay must ship nothing");
            assert_eq!(s.col_misses, first.col_misses);
            assert_eq!(s.ht_misses, first.ht_misses, "replay must rebuild nothing");
            assert!(s.col_misses <= 9, "at most the nine fact columns upload");
            assert_eq!(s.evictions, 0, "a V100-sized budget must not evict");
        } else {
            after_first_pass = Some(sess.stats().clone());
        }
    }
}

/// Sharding under the pinned seed: random queries over a range-
/// partitioned fact table — zone-map pruning, per-shard encoding, and
/// shard-at-a-time merging on host and device — reproduce the row-wise
/// oracle byte-for-byte, including through a memory-starved session that
/// must evict between shards.
#[test]
fn pinned_sharded_replay_matches_the_oracle_under_eviction() {
    use crystal::runtime::DeviceSession;
    use crystal::ssb::encoding::FactEncodings;
    use crystal::ssb::engines::gpu as gpu_engine;
    use crystal::ssb::PartitionedFact;

    let seed = base_seed();
    let d = SsbData::generate_scaled(1, 0.001, seed); // 6k fact rows
    let pf = PartitionedFact::partition(&d, 6, &FactEncodings::plain());
    let stream: Vec<_> = (0..12u64)
        .map(|i| random_star_query(&d, seed.wrapping_add(i)))
        .collect();

    // Host sharded path, with pruning visible in the scan counts.
    let mut pruned_any = false;
    for (i, q) in stream.iter().enumerate() {
        let expected = reference::execute(&d, q);
        let (got, _, scanned) = exec::execute_partitioned(&d, &pf, q, 3, PipelineMode::Vectorized);
        assert_eq!(got, expected, "query {i}: sharded host diverged");
        assert_eq!(scanned, pf.live_rows(q), "query {i}: scan count");
        pruned_any |= scanned < d.lineorder.rows();
    }
    assert!(pruned_any, "the pinned stream never exercised pruning");

    // Device sharded path under a budget of half the sharded working
    // set: shards rotate through the cache across the two passes, and
    // every merged result still matches the oracle.
    let mut gpu = Gpu::new(nvidia_v100());
    let mut sess = DeviceSession::with_budget(&mut gpu, pf.size_bytes() / 2);
    for pass in 0..2 {
        for (i, q) in stream.iter().enumerate() {
            let expected = reference::execute(&d, q);
            let run = gpu_engine::execute_partitioned_session(&mut sess, &d, &pf, q)
                .expect("every single-shard working set fits half the table");
            assert_eq!(
                run.result, expected,
                "query {i} pass {pass}: starved sharded session diverged"
            );
        }
    }
    assert!(
        sess.stats().evictions > 0,
        "half the sharded working set must evict: {:?}",
        sess.stats()
    );
}

/// Fusion differential under the pinned seed: every random star query
/// runs BOTH simulated-GPU paths — the fused tile-at-a-time megakernel
/// and the per-operator thread-per-row reference
/// (`omnisci::execute_unfused_session`) — through one warm session, and
/// the results must be byte-identical to each other and to the row-wise
/// oracle. Packed encodings and sharded execution ride the fused path on
/// a stride, and a guaranteed-empty query closes the edge case where
/// scalar/grouped aggregates diverge most easily.
#[test]
fn fused_and_unfused_gpu_paths_agree_on_every_random_query() {
    use crystal::runtime::DeviceSession;
    use crystal::ssb::encoding::FactEncodings;
    use crystal::ssb::engines::{gpu as gpu_engine, omnisci};
    use crystal::ssb::plan::{AggExpr, FactCol, FactPred, StarQuery};
    use crystal::ssb::{PartitionedFact, QueryResult};

    let seed = base_seed();
    let d = SsbData::generate_scaled(1, 0.001, seed); // 6k fact rows
    let pf = PartitionedFact::partition(&d, 4, &FactEncodings::plain());
    let mut gpu = Gpu::new(nvidia_v100());
    let mut sess = DeviceSession::new(&mut gpu);

    let mut empty = 0usize;
    let mut packed_runs = 0usize;
    let mut sharded_runs = 0usize;
    for i in 0..32u64 {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        empty += usize::from(expected.checksum() == 0);

        // Fused megakernel: the whole pipeline in one launch per step.
        let fused = gpu_engine::execute_session(&mut sess, &d, &q).unwrap();
        assert_eq!(fused.result, expected, "seed {qseed}: fused GPU diverged");
        let probe = fused.reports.last().unwrap();
        assert_eq!(probe.launches, 1, "seed {qseed}: probe must be one launch");

        // Per-operator reference path, same session residency.
        let unfused = omnisci::execute_unfused_session(&mut sess, &d, &q);
        assert_eq!(
            unfused.result, expected,
            "seed {qseed}: unfused GPU diverged"
        );
        assert_eq!(
            unfused.result, fused.result,
            "seed {qseed}: the two GPU paths disagree"
        );

        if i % 4 == 0 {
            // The same query over a randomly encoded fact table: the
            // fused kernel unpacks tiles in registers, results unchanged.
            let enc = random_encodings(&d, qseed ^ ENCODING_SALT);
            packed_runs += usize::from(enc.any_packed());
            let fact = EncodedFact::encode(&d, &enc);
            let packed = gpu_engine::execute_encoded_session(&mut sess, &d, &fact, &q).unwrap();
            assert_eq!(
                packed.result, expected,
                "seed {qseed}: packed fused GPU diverged"
            );

            // Shard-at-a-time fused execution with zone-map pruning.
            sharded_runs += 1;
            let sharded = gpu_engine::execute_partitioned_session(&mut sess, &d, &pf, &q)
                .expect("single-shard working sets fit a V100 budget");
            assert_eq!(
                sharded.result, expected,
                "seed {qseed}: sharded fused GPU diverged"
            );
        }
    }
    assert!(packed_runs >= 4, "only {packed_runs} packed-table runs");
    assert!(sharded_runs >= 8, "only {sharded_runs} sharded runs");

    // Guaranteed-empty query: lo_discount is 0..=10 by construction, so
    // discount >= 90 selects nothing on either path.
    let q = StarQuery {
        name: "empty.fused",
        fact_preds: vec![FactPred::between(FactCol::Discount, 90, 99)],
        joins: vec![],
        agg: AggExpr::SumDiscountedPrice,
    };
    let fused = gpu_engine::execute_session(&mut sess, &d, &q).unwrap();
    let unfused = omnisci::execute_unfused_session(&mut sess, &d, &q);
    assert_eq!(fused.result, QueryResult::Scalar(0));
    assert_eq!(unfused.result, QueryResult::Scalar(0));
    let _ = empty; // random empties are welcome but not required

    // The warm session served both paths from one residency pool: the
    // unfused pass re-reads the same cached columns and memoized tables.
    assert!(sess.stats().col_hits > 0, "paths must share residency");
}

/// The two pipeline modes and adversarial morsel sizes agree on random
/// queries, not just the canned 13 — scheduling must be unobservable.
#[test]
fn random_queries_are_schedule_invariant() {
    let seed = base_seed() ^ 0x5eed_5eed;
    let d = SsbData::generate_scaled(1, 0.001, seed);
    for i in 0..24u64 {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        for (threads, morsel) in [(1usize, 1usize << 20), (3, 1000), (8, 1)] {
            let (r, _) =
                exec::execute_with_morsel(&d, &q, threads, morsel, PipelineMode::Vectorized);
            assert_eq!(
                r, expected,
                "seed {qseed} threads {threads} morsel {morsel}"
            );
            let (r, _) =
                exec::execute_with_morsel(&d, &q, threads, morsel, PipelineMode::TupleAtATime);
            assert_eq!(r, expected, "seed {qseed} tuple threads {threads}");
        }
    }
}

//! Randomized cross-engine differential suite.
//!
//! Generates hundreds of seeded random star queries
//! (`crystal::ssb::arbitrary`) and checks that every rewired engine —
//! the morsel-driven vectorized CPU path, the tuple-at-a-time Hyper path,
//! and the cost-routed coprocessor path — produces a `QueryResult`
//! byte-identical to the row-wise reference oracle. Fixed suites exercise
//! a handful of plan shapes; this sweep exercises the whole descriptor
//! space, which is where scheduling and compaction bugs hide.
//!
//! The base seed is pinned by `CRYSTAL_DIFF_SEED` (decimal u64; default
//! 20260730) so CI runs are reproducible; any failure message names the
//! per-query seed, which reproduces the query alone via
//! `random_star_query(&data, seed)`.

use crystal::gpu_sim::Gpu;
use crystal::hardware::{intel_i7_6900, nvidia_v100, pcie_gen3};
use crystal::ssb::arbitrary::random_star_query;
use crystal::ssb::engines::{copro, cpu, hyper, reference};
use crystal::ssb::exec::{self, PipelineMode};
use crystal::ssb::SsbData;

/// Number of random queries the suite sweeps (the acceptance floor is
/// 200).
const QUERIES: u64 = 224;

/// Every `GPU_SIM_STRIDE`-th query additionally runs the full GPU
/// simulator via a forced coprocessor placement (the simulator is
/// functional but slow in debug builds; the routed coprocessor path —
/// which Section 3.1 sends to the host — runs for *all* queries).
const GPU_SIM_STRIDE: u64 = 16;

fn base_seed() -> u64 {
    std::env::var("CRYSTAL_DIFF_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_260_730)
}

#[test]
fn random_queries_agree_across_all_engines() {
    let seed = base_seed();
    let d = SsbData::generate_scaled(1, 0.002, seed); // 12k fact rows
    let mut gpu = Gpu::new(nvidia_v100());
    let cpu_spec = intel_i7_6900();
    let pcie = pcie_gen3();
    // An interconnect faster than DRAM forces Placement::Coprocessor so
    // the GPU half of the routed engine is also differentially tested.
    let mut fast_link = pcie_gen3();
    fast_link.bandwidth = cpu_spec.read_bw * 4.0;

    let mut grouped = 0usize;
    let mut nonempty = 0usize;
    for i in 0..QUERIES {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        grouped += usize::from(!q.group_attrs().is_empty());
        nonempty += usize::from(expected.checksum() != 0);

        let (got_cpu, trace) = cpu::execute(&d, &q, 4);
        assert_eq!(got_cpu, expected, "seed {qseed}: morsel CPU diverged");
        assert_eq!(trace.fact_rows, d.lineorder.rows());

        let got_hyper = hyper::execute(&d, &q, 4);
        assert_eq!(got_hyper, expected, "seed {qseed}: hyper diverged");

        let placed = copro::execute_placed(&mut gpu, &pcie, &cpu_spec, &d, &q, 4);
        assert_eq!(
            placed.choice.placement,
            copro::Placement::Host,
            "seed {qseed}: PCIe routing must stay host-side"
        );
        assert_eq!(
            placed.result, expected,
            "seed {qseed}: routed coprocessor engine diverged"
        );

        if i % GPU_SIM_STRIDE == 0 {
            gpu.reset_l2();
            let dev = copro::execute_placed(&mut gpu, &fast_link, &cpu_spec, &d, &q, 4);
            assert_eq!(
                dev.choice.placement,
                copro::Placement::Coprocessor,
                "seed {qseed}"
            );
            assert_eq!(
                dev.result, expected,
                "seed {qseed}: GPU coprocessor path diverged"
            );
        }
    }

    // The sweep must genuinely exercise the space: a workload that
    // degenerated to all-scalar or all-empty results would vacuously pass.
    assert!(grouped >= 50, "only {grouped} grouped queries generated");
    assert!(nonempty >= 50, "only {nonempty} non-empty results");
}

/// The two pipeline modes and adversarial morsel sizes agree on random
/// queries, not just the canned 13 — scheduling must be unobservable.
#[test]
fn random_queries_are_schedule_invariant() {
    let seed = base_seed() ^ 0x5eed_5eed;
    let d = SsbData::generate_scaled(1, 0.001, seed);
    for i in 0..24u64 {
        let qseed = seed.wrapping_add(i);
        let q = random_star_query(&d, qseed);
        let expected = reference::execute(&d, &q);
        for (threads, morsel) in [(1usize, 1usize << 20), (3, 1000), (8, 1)] {
            let (r, _) =
                exec::execute_with_morsel(&d, &q, threads, morsel, PipelineMode::Vectorized);
            assert_eq!(
                r, expected,
                "seed {qseed} threads {threads} morsel {morsel}"
            );
            let (r, _) =
                exec::execute_with_morsel(&d, &q, threads, morsel, PipelineMode::TupleAtATime);
            assert_eq!(r, expected, "seed {qseed} tuple threads {threads}");
        }
    }
}

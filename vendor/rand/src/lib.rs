//! Offline drop-in subset of the `rand 0.8` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it uses: [`rngs::SmallRng`], [`SeedableRng`]
//! (only `seed_from_u64`) and [`Rng`] (`gen_range` over half-open and
//! inclusive integer ranges, plus `gen::<f32>()` / `gen::<f64>()`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is all the workspace requires:
//! every dataset and workload generator takes an explicit seed and must be
//! reproducible run-to-run (see `crystal-storage::gen` and
//! `crystal-ssb::data`). The stream differs from upstream `rand`'s
//! `SmallRng`; nothing in the workspace depends on the exact stream, only
//! on determinism and uniformity.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Modulo bias is < 2^-64 for all spans the workspace uses; acceptable
    // for workload generation.
    (rng.next_u64() as u128) % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i32), b.gen_range(0..1_000_000i32));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<i32> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let ys: Vec<i32> = (0..32).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(5..17i32);
            assert!((5..17).contains(&v));
            let w = r.gen_range(1..=50i32);
            assert!((1..=50).contains(&w));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mean32: f32 = (0..n).map(|_| r.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mean32 - 0.5).abs() < 0.01, "mean {mean32}");
    }

    #[test]
    fn all_residues_reachable() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 25];
        for _ in 0..10_000 {
            seen[r.gen_range(0..25usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Deterministic case generation and failure reporting.

/// Per-`proptest!`-block configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The per-case RNG: xoshiro256++ seeded from a hash of the test name and
/// case index, so every test has an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a, so seeding does not depend on `DefaultHasher`'s unstable output.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl TestRng {
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut sm = fnv1a(test_name.as_bytes()) ^ ((case as u64) << 32 | 0x9E37);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Prints which generated case failed when the test body panics (there is
/// no shrinking; the case index plus the deterministic seeding is enough to
/// reproduce).
pub struct CasePanicContext {
    test_name: &'static str,
    case: u32,
    armed: bool,
}

impl CasePanicContext {
    pub fn new(test_name: &'static str, case: u32) -> Self {
        CasePanicContext {
            test_name,
            case,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: test '{}' failed at generated case {} \
                 (deterministic; rerun the test to reproduce)",
                self.test_name, self.case
            );
        }
    }
}

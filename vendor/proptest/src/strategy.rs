//! Value-generation strategies: integer ranges, `any::<T>()`, tuples, and
//! string-literal regex strategies of the `[a-z]{1,8}` subset.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of generated values. Unlike upstream proptest there is no value
/// tree / shrinking: `generate` directly produces one value per case.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

#[inline]
fn sample_span(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128) % span
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// String literals are regex strategies. Supported subset: literal ASCII
/// characters, character classes `[a-z0-9_]` (ranges and singletons), and
/// `{n}` / `{m,n}` quantifiers on the preceding atom. This covers the
/// patterns the workspace tests use (e.g. `"[a-z]{1,8}"`); anything else
/// panics loudly rather than silently generating the wrong language.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in atoms {
            let n = if lo == hi {
                lo
            } else {
                (sample_span(rng, (hi - lo + 1) as u128) as usize) + lo
            };
            for _ in 0..n {
                let i = sample_span(rng, chars.len() as u128) as usize;
                out.push(chars[i]);
            }
        }
        out
    }
}

/// Parses the supported regex subset into `(alphabet, min_reps, max_reps)`
/// atoms.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut atoms: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("proptest stub: unclosed '[' in {pat:?}"))
                    + i;
                let mut alphabet = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "proptest stub: bad class range in {pat:?}");
                        for c in a..=b {
                            alphabet.push(c);
                        }
                        j += 3;
                    } else {
                        alphabet.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(
                    !alphabet.is_empty(),
                    "proptest stub: empty class in {pat:?}"
                );
                atoms.push((alphabet, 1, 1));
                i = close + 1;
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("proptest stub: unclosed '{{' in {pat:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad {m,n}"),
                        b.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                };
                assert!(lo <= hi, "proptest stub: bad quantifier in {pat:?}");
                let last = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("proptest stub: dangling quantifier in {pat:?}"));
                assert!(
                    last.1 == 1 && last.2 == 1,
                    "proptest stub: double quantifier in {pat:?}"
                );
                last.1 = lo;
                last.2 = hi;
                i = close + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == ' ' || c == '#' || c == '-' => {
                atoms.push((vec![c], 1, 1));
                i += 1;
            }
            '\\' if i + 1 < chars.len() => {
                atoms.push((vec![chars[i + 1]], 1, 1));
                i += 2;
            }
            other => panic!(
                "proptest stub: unsupported regex construct {other:?} in {pat:?} \
                 (supported: literals, [..] classes, {{n}}/{{m,n}} quantifiers)"
            ),
        }
    }
    atoms
}

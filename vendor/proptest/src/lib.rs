//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its property tests use:
//!
//! * the [`proptest!`] macro with the `#![proptest_config(..)]` header and
//!   `arg in strategy` bindings;
//! * strategies: integer ranges, `any::<T>()`, tuples, [`collection::vec`],
//!   and string-literal regex strategies of the `[a-z]{1,8}` form;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the panic
//! message carries the test name and case index, and generation is fully
//! deterministic (derived from the test name), so a failure reproduces by
//! rerunning the same test binary.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expands property tests into plain `#[test]` functions that loop over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::new(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __guard = $crate::test_runner::CasePanicContext::new(
                        stringify!($name),
                        __case,
                    );
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3i32..17, y in 1usize..5, z in 0u64..1_000_000_000) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
            prop_assert!(z < 1_000_000_000);
        }

        #[test]
        fn vec_lengths_respected(v in vec(any::<i32>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn tuples_and_bools(pairs in vec((any::<i32>(), any::<bool>()), 1..50)) {
            prop_assert!(!pairs.is_empty());
        }

        #[test]
        fn string_regex_subset(words in vec("[a-z]{1,8}", 0..20)) {
            for w in &words {
                prop_assert!((1..=8).contains(&w.len()), "{}", w);
                prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::new("t", 0);
        let mut b = crate::test_runner::TestRng::new("t", 0);
        let sa = crate::strategy::Strategy::generate(&(0i32..1000), &mut a);
        let sb = crate::strategy::Strategy::generate(&(0i32..1000), &mut b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn bool_generation_hits_both_values() {
        let mut rng = crate::test_runner::TestRng::new("bools", 0);
        let vs: Vec<bool> = (0..64)
            .map(|_| crate::strategy::Strategy::generate(&any::<bool>(), &mut rng))
            .collect();
        assert!(vs.iter().any(|&b| b) && vs.iter().any(|&b| !b));
    }
}

//! Collection strategies (`vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with element strategy `S` and length drawn from a
/// half-open range.
pub struct VecStrategy<S: Strategy> {
    elem: S,
    len: Range<usize>,
}

/// `vec(element_strategy, len_range)` — as in upstream proptest.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy: empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u128;
        let n = self.len.start + ((rng.next_u64() as u128) % span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

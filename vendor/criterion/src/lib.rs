//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`throughput`, `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warmup
//! then `sample_size` timed batches, reporting the per-iteration mean and —
//! when a throughput is set — the derived rate. There is no outlier
//! analysis, no plotting, and no baseline persistence; the point is that
//! `cargo bench` compiles and produces honest order-of-magnitude numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, 10, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Collects one timing sample per `iter` call site.
pub struct Bencher {
    sample_size: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `sample_size` batches of the routine and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup (also primes caches/allocator the way criterion's warmup
        // phase would, just much shorter).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = Some(total.as_nanos() as f64 / iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    let mut b = Bencher {
        sample_size,
        mean_ns: None,
    };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    format!("  {:>10.3} GB/s", n as f64 / ns)
                }
                Throughput::Elements(n) => {
                    format!("  {:>10.3} Melem/s", n as f64 / ns * 1e3)
                }
            });
            eprintln!(
                "{label:<60} {:>12.1} ns/iter{}",
                ns,
                rate.unwrap_or_default()
            );
        }
        None => eprintln!("{label:<60}  (no iter() call)"),
    }
}

/// Declares a group function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

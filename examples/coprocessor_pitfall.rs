//! The coprocessor pitfall (Section 3.1): why shipping data to the GPU per
//! query cannot beat a good CPU implementation, and why resident working
//! sets change the picture.
//!
//! Runs SSB q1.1 three ways — CPU-only, GPU-as-coprocessor (data shipped
//! over PCIe per query) and GPU-resident (Crystal, data already in HBM) —
//! and prints the modeled paper-scale times.
//!
//! ```sh
//! cargo run --release --example coprocessor_pitfall
//! ```

use crystal::gpu_sim::Gpu;
use crystal::hardware::{intel_i7_6900, nvidia_v100, pcie_gen3};
use crystal::models::ssb::coprocessor_bounds;
use crystal::ssb::engines::{copro, cpu as cpu_engine, gpu as gpu_engine};
use crystal::ssb::model as qmodel;
use crystal::ssb::queries::{query, QueryId};
use crystal::ssb::SsbData;

fn main() {
    let fact_scale = 0.01;
    let data = SsbData::generate_scaled(20, fact_scale, 7);
    let q = query(&data, QueryId::new(1, 1));
    let cpu_spec = intel_i7_6900();
    let pcie = pcie_gen3();
    let threads = crystal::cpu::exec::default_threads();

    // CPU-only execution (fused, vectorized) + its paper-scale model.
    let (cpu_result, trace) = cpu_engine::execute(&data, &q, threads);
    let t_cpu = qmodel::cpu_empirical_secs(&q, &trace, &cpu_spec);

    // Coprocessor: 4 fact columns cross PCIe, overlapped with execution.
    let mut gpu = Gpu::new(nvidia_v100());
    let run = copro::execute_scaled(&mut gpu, &pcie, &data, &q, fact_scale).unwrap();
    assert_eq!(run.gpu_run.result, cpu_result);

    // GPU-resident: the same kernels, data already in device memory.
    gpu.reset_l2();
    let resident = gpu_engine::execute(&mut gpu, &data, &q).unwrap();
    let t_resident = resident.sim_secs_scaled(fact_scale);

    println!("SSB q1.1 at scale factor 20 (120M rows), modeled on Table-2 hardware:\n");
    println!(
        "  CPU only (Skylake, fused+vectorized):   {:>8.1} ms",
        t_cpu * 1e3
    );
    println!(
        "  GPU as coprocessor (PCIe {} GBps):    {:>8.1} ms  <- transfer {:.1} ms, exec {:.1} ms",
        pcie.bandwidth / 1e9,
        run.time.overlapped * 1e3,
        run.time.transfer * 1e3,
        run.time.exec * 1e3
    );
    println!(
        "  GPU resident (Crystal, data in HBM):    {:>8.1} ms",
        t_resident * 1e3
    );

    let (gpu_bound, cpu_bound) = coprocessor_bounds(run.shipped_bytes, &cpu_spec, &pcie);
    println!(
        "\nSection 3.1's argument: the coprocessor is lower-bounded by transfer \
         ({:.1} ms),\nwhile the CPU is upper-bounded by one scan of the same bytes \
         ({:.1} ms) — so the\ncoprocessor can never win. Keeping the working set on \
         the GPU is {:.0}x faster\nthan the coprocessor and {:.0}x faster than the CPU.",
        gpu_bound * 1e3,
        cpu_bound * 1e3,
        run.time.overlapped / t_resident,
        t_cpu / t_resident
    );
}

//! Operator comparison: reproduce the Section 4 methodology on one machine
//! — run each database operator on the real CPU engine and the simulated
//! GPU, and compare against the paper's bandwidth-saturation models.
//!
//! ```sh
//! cargo run --release --example operator_comparison
//! ```

use crystal::core::hash::{slots_for_fill_rate, DeviceHashTable, HashScheme};
use crystal::core::kernels;
use crystal::cpu;
use crystal::gpu_sim::exec::LaunchConfig;
use crystal::gpu_sim::Gpu;
use crystal::hardware::{intel_i7_6900, nvidia_v100, MIB};
use crystal::models;
use crystal::storage::gen;

const N: usize = 1 << 20;

fn main() {
    let cpu_spec = intel_i7_6900();
    let gpu_spec = nvidia_v100();
    let threads = cpu::exec::default_threads();
    let mut gpu = Gpu::new(gpu_spec.clone());
    // Simulated times below are scaled to the paper's 2^28-entry arrays.
    let scale = (1usize << 28) as f64 / N as f64;

    println!("operator        paper-scale model (CPU / GPU)   simulated GPU   expected gain");
    println!("--------------------------------------------------------------------------");

    // --- Select (sigma = 0.5) ---------------------------------------------
    let domain = 1 << 20;
    let data = gen::uniform_i32_domain(N, domain, 1);
    let v = gen::threshold_for_selectivity(domain, 0.5);
    let col = gpu.alloc_from(&data);
    let (out, r) = kernels::select_where(&mut gpu, &col, LaunchConfig::default_for_items(N), |y| {
        y < v
    });
    let host = cpu::select::select_simd_pred(&data, v, threads);
    assert_eq!(out.len(), host.len());
    gpu.free(out);
    let m_cpu = models::select::select_secs(1 << 28, 0.5, cpu_spec.read_bw, cpu_spec.write_bw);
    let m_gpu = models::select::select_secs(1 << 28, 0.5, gpu_spec.read_bw, gpu_spec.write_bw);
    report("select", m_cpu, m_gpu, r.time.bottleneck_secs() * scale);

    // --- Project (sigmoid) --------------------------------------------------
    let x1h = gen::uniform_f32(N, 2);
    let x2h = gen::uniform_f32(N, 3);
    let x1 = gpu.alloc_from(&x1h);
    let x2 = gpu.alloc_from(&x2h);
    let (out, r) = kernels::project_sigmoid(&mut gpu, &x1, &x2, 2.0, 3.0);
    let host = cpu::project::project_sigmoid_opt(&x1h, &x2h, 2.0, 3.0, threads);
    assert!((out.as_slice()[0] - host[0]).abs() < 1e-6);
    gpu.free(out);
    let m_cpu = models::project::project_secs(1 << 28, cpu_spec.read_bw, cpu_spec.write_bw);
    let m_gpu = models::project::project_secs(1 << 28, gpu_spec.read_bw, gpu_spec.write_bw);
    report("project", m_cpu, m_gpu, r.time.bottleneck_secs() * scale);

    // --- Join (64 MB hash table: out-of-cache on both devices) -------------
    let ht_bytes = 64 * MIB;
    let build_n = ht_bytes / 16;
    let bkeys = gen::shuffled_keys(build_n, 4);
    let bvals: Vec<i32> = (0..build_n as i32).collect();
    let dbk = gpu.alloc_from(&bkeys);
    let dbv = gpu.alloc_from(&bvals);
    let (ht, _) = DeviceHashTable::build(
        &mut gpu,
        &dbk,
        &dbv,
        slots_for_fill_rate(build_n, 0.5),
        HashScheme::Mult,
    );
    let pkeys = gen::foreign_keys(N, build_n, 6);
    let pvals = vec![1i32; N];
    let dpk = gpu.alloc_from(&pkeys);
    let dpv = gpu.alloc_from(&pvals);
    let cpu_ht = cpu::join::CpuHashTable::build_parallel(&bkeys, &bvals, ht_bytes / 8, threads);
    let cpu_sum = cpu::join::probe_scalar(&cpu_ht, &pkeys, &pvals, threads);
    let (_, _) = kernels::hash_join_sum(&mut gpu, &dpk, &dpv, &ht); // L2 warmup
    let (sum, r) = kernels::hash_join_sum(&mut gpu, &dpk, &dpv, &ht);
    assert_eq!(sum.checksum, cpu_sum);
    let m_cpu = models::join::join_probe_cpu_empirical_secs(1 << 28, ht_bytes, &cpu_spec);
    let m_gpu = models::join::join_probe_gpu_secs(1 << 28, ht_bytes, &gpu_spec);
    report("join(64MB)", m_cpu, m_gpu, r.time.bottleneck_secs() * scale);

    // --- Sort ----------------------------------------------------------------
    let keys: Vec<u32> = gen::uniform_i32(N, 8).iter().map(|&k| k as u32).collect();
    let vals: Vec<u32> = (0..N as u32).collect();
    let dk = gpu.alloc_from(&keys);
    let dv = gpu.alloc_from(&vals);
    let (sk, _, reports) = kernels::msb_radix_sort(&mut gpu, &dk, &dv).unwrap();
    let (ck, _) = cpu::radix::lsb_radix_sort(&keys, &vals, threads);
    assert_eq!(sk.as_slice(), &ck[..]);
    let sim: f64 = reports
        .iter()
        .map(|r| r.time.bottleneck_secs())
        .sum::<f64>()
        * scale;
    let m_cpu = models::sort::radix_sort_secs(1 << 28, 4, cpu_spec.read_bw, cpu_spec.write_bw);
    let m_gpu = models::sort::radix_sort_secs(1 << 28, 4, gpu_spec.read_bw, gpu_spec.write_bw);
    report("sort", m_cpu, m_gpu, sim);

    println!("\nall operator results verified identical between CPU and simulated GPU.");
    println!("(gains hover near the 16.2x bandwidth ratio except the join, whose");
    println!("128B-vs-64B access granularity halves the expected gain — Section 4.3)");
}

fn report(name: &str, model_cpu: f64, model_gpu: f64, sim_gpu: f64) {
    println!(
        "{name:<14}  {:>8.2} ms / {:>6.2} ms      {:>8.2} ms     {:>5.1}x",
        model_cpu * 1e3,
        model_gpu * 1e3,
        sim_gpu * 1e3,
        model_cpu / model_gpu
    );
}

//! Quickstart: run a selection, a projection and a join on the simulated
//! GPU with Crystal's tile-based kernels, and inspect the simulated
//! timing reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crystal::prelude::*;

fn main() {
    // A simulated Nvidia V100 with the paper's Table-2 characteristics.
    let mut gpu = Gpu::new(nvidia_v100());
    println!(
        "device: {} ({} SMs, {:.0} GBps HBM, {} MB L2)\n",
        gpu.spec().name,
        gpu.spec().num_sms,
        gpu.spec().read_bw / 1e9,
        gpu.spec().l2_size / (1024 * 1024),
    );

    let n = 1 << 20;

    // --- Selection: SELECT y FROM r WHERE y > 900_000 ---------------------
    let data: Vec<i32> = crystal::storage::gen::uniform_i32_domain(n, 1_000_000, 42);
    let col = gpu.alloc_from(&data);
    let (matches, report) = kernels::select_gt(&mut gpu, &col, 900_000);
    println!(
        "select:  {} of {} rows matched   [{}]",
        matches.len(),
        n,
        report
    );
    gpu.free(matches);

    // --- Projection: SELECT sigmoid(2 x1 + 3 x2) FROM r -------------------
    let x1 = gpu.alloc_from(&crystal::storage::gen::uniform_f32(n, 7));
    let x2 = gpu.alloc_from(&crystal::storage::gen::uniform_f32(n, 8));
    let (scores, report) = kernels::project_sigmoid(&mut gpu, &x1, &x2, 2.0, 3.0);
    println!(
        "project: first scores = {:.3?}   [{}]",
        &scores.as_slice()[..4],
        report
    );
    gpu.free(scores);

    // --- Hash join: SELECT SUM(a.v + b.v) FROM a, b WHERE a.k = b.k -------
    let build_n = 1 << 14;
    let build_keys = gpu.alloc_from(&crystal::storage::gen::shuffled_keys(build_n, 3));
    let build_vals = gpu.alloc_from(&(0..build_n as i32).collect::<Vec<_>>());
    let (ht, _) = crystal::core::DeviceHashTable::build(
        &mut gpu,
        &build_keys,
        &build_vals,
        crystal::core::hash::slots_for_fill_rate(build_n, 0.5),
        crystal::core::hash::HashScheme::Mult,
    );
    let probe_keys = gpu.alloc_from(&crystal::storage::gen::foreign_keys(n, build_n, 5));
    let probe_vals = gpu.alloc_from(&vec![1i32; n]);
    let (sum, report) = kernels::hash_join_sum(&mut gpu, &probe_keys, &probe_vals, &ht);
    println!(
        "join:    checksum {} over {} matches   [{}]",
        sum.checksum, sum.matches, report
    );

    // --- The simulated timeline -------------------------------------------
    println!("\nsimulated kernel timeline:");
    for r in gpu.reports() {
        println!("  {r}");
    }
    println!(
        "\ntotal simulated GPU time: {:.3} ms (host wall-clock is unrelated: \
         the simulator executes functionally and models V100 timing)",
        gpu.total_sim_secs() * 1e3
    );
}

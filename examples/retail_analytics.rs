//! Retail analytics: the paper's motivating scenario (Section 1) — weeks
//! of a large retailer's sales history held entirely in GPU memory,
//! queried interactively.
//!
//! Generates a Star Schema Benchmark database (sales facts with product /
//! supplier / customer / date dimensions), then answers three business
//! questions on both the standalone CPU engine and the Crystal GPU engine,
//! verifying they agree and comparing modeled costs.
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use crystal::gpu_sim::Gpu;
use crystal::hardware::nvidia_v100;
use crystal::ssb::engines::{cpu as cpu_engine, gpu as gpu_engine};
use crystal::ssb::queries::{query, QueryId};
use crystal::ssb::{QueryResult, SsbData};

fn main() {
    // SF-1 dimensions with a 600k-row sales sample (fast to demo; crank
    // `fact_scale` up for bigger runs).
    let data = SsbData::generate_scaled(1, 0.1, 2024);
    println!(
        "sales database: {} sales, {} products, {} suppliers, {} customers ({:.1} MB)",
        data.lineorder.rows(),
        data.part.partkey.len(),
        data.supplier.suppkey.len(),
        data.customer.custkey.len(),
        data.size_bytes() as f64 / 1e6
    );

    let mut gpu = Gpu::new(nvidia_v100());
    let threads = crystal::cpu::exec::default_threads();

    let questions = [
        (
            QueryId::new(1, 1),
            "How much revenue did quantity-capped discount promotions yield in 1993?",
        ),
        (
            QueryId::new(2, 1),
            "Revenue per product brand and year for category MFGR#12 sourced from AMERICA?",
        ),
        (
            QueryId::new(4, 1),
            "Profit by year and customer nation for AMERICA-to-AMERICA trade in MFGR#1/2?",
        ),
    ];

    for (id, question) in questions {
        let q = query(&data, id);
        println!("\n{id}: {question}");
        for line in q.to_sql().lines() {
            println!("    | {line}");
        }

        let (cpu_result, trace) = cpu_engine::execute(&data, &q, threads);
        gpu.reset_l2();
        let gpu_run = gpu_engine::execute(&mut gpu, &data, &q).unwrap();
        assert_eq!(cpu_result, gpu_run.result, "engines must agree");

        match &cpu_result {
            QueryResult::Scalar(v) => println!("  answer: revenue = {v}"),
            QueryResult::Groups(g) => {
                println!("  answer: {} groups; top rows:", g.len());
                let mut rows = g.clone();
                rows.sort_by_key(|(_, s)| std::cmp::Reverse(*s));
                for (key, sum) in rows.iter().take(3) {
                    println!("    group {key:?} -> {sum}");
                }
            }
        }
        println!(
            "  pipeline: {} rows -> {} after predicates -> {} after joins ({} groups)",
            trace.fact_rows, trace.pred_survivors, trace.result_rows, trace.groups
        );
        println!(
            "  simulated V100 time: {:.3} ms across {} kernels",
            gpu_run.sim_secs() * 1e3,
            gpu_run.reports.len()
        );
    }

    println!(
        "\n(the paper's result: at SF 20 this workload runs ~25x faster on a \
         V100 than on an 8-core Skylake, at ~4x better cost effectiveness)"
    );
}
